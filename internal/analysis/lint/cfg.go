package lint

import (
	"go/ast"
	"go/token"
)

// This file is the small dataflow engine behind the flow-sensitive analyzers
// (lockflow). It builds a per-function control-flow graph over the AST —
// stdlib only, no x/tools — and runs a forward must-analysis to a fixpoint:
// a fact holds at a point only when it holds on every path reaching it
// (meet = set intersection), which is exactly the "mutex held on every
// access path" question.
//
// Blocks hold flat lists of ast.Nodes: compound statements are decomposed
// by the builder (an if contributes its init and cond to the current block
// and branches to then/else blocks), so transfer functions never see nested
// control flow. Function literals are deliberately left inside their nodes;
// analyzers treat them as separate functions.

// cfgBlock is one straight-line run of AST nodes with its successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// cfgFunc is the control-flow graph of one function body.
type cfgFunc struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

type loopTargets struct {
	brk, cont *cfgBlock
}

type cfgBuilder struct {
	blocks []*cfgBlock
	// Innermost-last stacks of break/continue targets; switch and select
	// push a break target with a nil cont.
	loops []loopTargets
	// Labeled loop/switch targets for `break L` / `continue L`.
	labeled map[string]loopTargets
	// Label to attach to the next loop/switch the builder enters.
	pendingLabel string
	// Next case clause's block while building a switch (fallthrough target).
	fallthroughTo *cfgBlock
}

// buildCFG decomposes body into basic blocks. Goto is out of scope (the tree
// has none): a goto terminates its block with no successors, leaving the
// target conservatively unreached (unreached blocks are skipped by
// mustWalk, so no finding is ever produced from them).
func buildCFG(body *ast.BlockStmt) *cfgFunc {
	b := &cfgBuilder{labeled: map[string]loopTargets{}}
	entry := b.newBlock()
	end := b.stmtList(entry, body.List)
	_ = end
	return &cfgFunc{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmtList builds each statement in order; a nil current block means the
// remaining statements are unreachable (after return/break/...) and are not
// built — acceptable for a no-false-positives must-analysis.
func (b *cfgBuilder) stmtList(cur *cfgBlock, stmts []ast.Stmt) *cfgBlock {
	for _, s := range stmts {
		if cur == nil {
			return nil
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt builds one statement starting at cur and returns the block control
// falls through to (nil when s never falls through).
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	// Any label not consumed by the statement kinds below (loops, switches)
	// is dropped; takeLabel consumes it.
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		out := b.stmt(cur, s.Stmt)
		b.pendingLabel = ""
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		link(cur, then)
		link(b.stmtList(then, s.Body.List), join)
		if s.Else != nil {
			els := b.newBlock()
			link(cur, els)
			link(b.stmt(els, s.Else), join)
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			link(head, exit)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			link(post, head)
			cont = post
		}
		b.pushLoop(loopTargets{brk: exit, cont: cont})
		body := b.newBlock()
		link(head, body)
		link(b.stmtList(body, s.Body.List), cont)
		b.popLoop()
		return exit

	case *ast.RangeStmt:
		// The range expression (and key/value targets) evaluate on the way
		// in; keep the whole statement visible to checkers in the head.
		head := b.newBlock()
		head.nodes = append(head.nodes, rangeHeader{s})
		link(cur, head)
		exit := b.newBlock()
		link(head, exit)
		b.pushLoop(loopTargets{brk: exit, cont: head})
		body := b.newBlock()
		link(head, body)
		link(b.stmtList(body, s.Body.List), head)
		b.popLoop()
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(cur, s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(cur, s.Body.List, false)

	case *ast.SelectStmt:
		return b.switchClauses(cur, s.Body.List, true)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			link(cur, b.branchTarget(s.Label, true))
		case token.CONTINUE:
			link(cur, b.branchTarget(s.Label, false))
		case token.FALLTHROUGH:
			link(cur, b.fallthroughTo)
		case token.GOTO:
			// Unsupported: terminate; the target stays unreached.
		}
		return nil

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		return nil

	default:
		// Flat statements: assignments, expression and send statements,
		// inc/dec, declarations, defer, go, empty. Appended whole; any
		// control flow they contain lives inside function literals, which
		// analyzers handle as separate functions.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// rangeHeader wraps a RangeStmt when it appears as a block node, marking
// that only its header (range expression, key/value binding) executes there
// — the body was decomposed into its own blocks.
type rangeHeader struct {
	stmt *ast.RangeStmt
}

func (r rangeHeader) Pos() token.Pos { return r.stmt.Pos() }
func (r rangeHeader) End() token.Pos { return r.stmt.X.End() }

// switchClauses builds the clause blocks of a switch/type-switch/select.
// Each clause is a successor of cur; a missing default adds a direct edge to
// the exit. comm true appends each select clause's communication statement
// to its block (the blocking op checkers must see it).
func (b *cfgBuilder) switchClauses(cur *cfgBlock, clauses []ast.Stmt, comm bool) *cfgBlock {
	exit := b.newBlock()
	b.pushLoop(loopTargets{brk: exit})
	hasDefault := false
	// Pre-create clause blocks so fallthrough can reach the next clause.
	blks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blks[i] = b.newBlock()
		link(cur, blks[i])
	}
	for i, clause := range clauses {
		var bodyStmts []ast.Stmt
		blk := blks[i]
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blk.nodes = append(blk.nodes, e)
			}
			bodyStmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else if comm {
				blk.nodes = append(blk.nodes, c.Comm)
			}
			bodyStmts = c.Body
		}
		savedFT := b.fallthroughTo
		if i+1 < len(clauses) {
			b.fallthroughTo = blks[i+1]
		} else {
			b.fallthroughTo = exit
		}
		link(b.stmtList(blk, bodyStmts), exit)
		b.fallthroughTo = savedFT
	}
	b.popLoop()
	if !hasDefault {
		link(cur, exit)
	}
	return exit
}

func (b *cfgBuilder) pushLoop(t loopTargets) {
	b.loops = append(b.loops, t)
	if b.pendingLabel != "" {
		b.labeled[b.pendingLabel] = t
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) branchTarget(label *ast.Ident, brk bool) *cfgBlock {
	if label != nil {
		t := b.labeled[label.Name]
		if brk {
			return t.brk
		}
		return t.cont
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		t := b.loops[i]
		if brk {
			return t.brk
		}
		if t.cont != nil { // switches push break-only frames
			return t.cont
		}
	}
	return nil
}

// factSet is a must-set of string facts ("c.mu is held").
type factSet map[string]bool

func copyFacts(f factSet) factSet {
	out := make(factSet, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// intersect removes from dst every fact absent from src, reporting whether
// dst changed.
func intersect(dst, src factSet) bool {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

// mustFlow runs the forward must-analysis to a fixpoint and returns each
// reachable block's entry facts. Unreached blocks are absent from the
// result. transfer mutates facts in place for one node.
func mustFlow(f *cfgFunc, entry factSet, transfer func(n ast.Node, facts factSet)) map[*cfgBlock]factSet {
	in := map[*cfgBlock]factSet{f.entry: copyFacts(entry)}
	work := []*cfgBlock{f.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := copyFacts(in[blk])
		for _, n := range blk.nodes {
			transfer(n, out)
		}
		for _, succ := range blk.succs {
			have, seen := in[succ]
			if !seen {
				in[succ] = copyFacts(out)
				work = append(work, succ)
			} else if intersect(have, out) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// mustWalk replays each reachable block from its fixpoint entry facts,
// calling check before transfer on every node, so check sees the facts that
// hold immediately before the node executes.
func mustWalk(f *cfgFunc, in map[*cfgBlock]factSet,
	transfer func(n ast.Node, facts factSet),
	check func(n ast.Node, facts factSet)) {
	for _, blk := range f.blocks {
		entry, reached := in[blk]
		if !reached {
			continue
		}
		cur := copyFacts(entry)
		for _, n := range blk.nodes {
			check(n, cur)
			transfer(n, cur)
		}
	}
}
