package lint

import (
	"fmt"
	"strings"
)

// Directive is one parsed //ruby: source annotation, produced by
// ParseDirective. Which fields are populated depends on Name:
//
//	allow        Analyzer, Reason
//	detached     Reason
//	guards       Args (guarded sibling field names)
//	locked       Args (mutex field names of the receiver held on entry)
//	hotpath, coldpath, ctxroot, atomic, serialstable — no arguments
type Directive struct {
	Name     string
	Analyzer string
	Reason   string
	Args     []string
}

// Directive argument shapes. Marker directives take no arguments; list
// directives take a comma-separated identifier list; allow and detached
// carry free-form justifications.
var markerDirectives = map[string]bool{
	"hotpath": true, "coldpath": true, "ctxroot": true,
	"atomic": true, "serialstable": true,
}

var listDirectives = map[string]bool{
	"guards": true, "locked": true,
}

// ParseDirective parses one comment's text (with the leading "//"). ok is
// false when the comment is not a //ruby: directive at all. A non-nil error
// describes a malformed directive; the caller reports it as a finding. The
// parser is total: no input panics (see FuzzAllowDirective).
func ParseDirective(comment string) (d Directive, ok bool, err error) {
	text, isDirective := strings.CutPrefix(comment, "//ruby:")
	if !isDirective {
		return Directive{}, false, nil
	}
	name, rest, _ := strings.Cut(text, " ")
	d = Directive{Name: name}
	switch {
	case name == "":
		return d, true, fmt.Errorf("empty //ruby: directive")

	case name == "allow":
		analyzer, reason, hasReason := strings.Cut(rest, "--")
		d.Analyzer = strings.TrimSpace(analyzer)
		d.Reason = strings.TrimSpace(reason)
		if d.Analyzer == "" || strings.ContainsAny(d.Analyzer, " \t") {
			return d, true, fmt.Errorf("//ruby:allow wants exactly one analyzer name: `//ruby:allow <analyzer> -- <reason>`")
		}
		if !hasReason || d.Reason == "" {
			return d, true, fmt.Errorf("//ruby:allow %s needs a justification: `//ruby:allow %s -- <reason>`", d.Analyzer, d.Analyzer)
		}
		return d, true, nil

	case name == "detached":
		d.Reason = strings.TrimSpace(rest)
		if d.Reason == "" {
			return d, true, fmt.Errorf("//ruby:detached needs a justification: `//ruby:detached <reason>`")
		}
		return d, true, nil

	case listDirectives[name]:
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			if !isIdent(f) {
				return d, true, fmt.Errorf("//ruby:%s lists %q, which is not a field identifier", name, f)
			}
			d.Args = append(d.Args, f)
		}
		if len(d.Args) == 0 {
			return d, true, fmt.Errorf("//ruby:%s needs a comma-separated field list: `//ruby:%s a,b`", name, name)
		}
		return d, true, nil

	case markerDirectives[name]:
		return d, true, nil

	default:
		return d, true, fmt.Errorf("unknown directive //ruby:%s", name)
	}
}

// isIdent reports whether s is a plausible Go identifier (ASCII letters,
// digits and underscores, not starting with a digit — annotation arguments
// name struct fields, which in this codebase are ASCII).
func isIdent(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
