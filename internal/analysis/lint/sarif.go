package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// Minimal SARIF 2.1.0 emission so CI can annotate pull requests inline
// (github/codeql-action/upload-sarif). Only the fields GitHub's ingester
// needs: rules, results, physical locations.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. File paths are made
// relative to root (the -C directory) so GitHub can map them onto the
// repository checkout.
func SARIF(diags []Diagnostic, root string) ([]byte, error) {
	var rules []sarifRule
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifText{Text: "malformed or unused //ruby: directives"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rubylint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
