package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestApplyFixes pins the acceptance criterion for rubylint -fix: on the
// fixable fixture (one uncancellable goroutine, one unsorted map range in a
// serializing function), applying every suggested fix yields a tree that
// still compiles and re-lints with zero findings.
func TestApplyFixes(t *testing.T) {
	src := filepath.Join("testdata", "src", "fixable")
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(fixable copy): %v", err)
	}
	diags := Run([]*Package{pkg}, All(), Config{ReportUnusedWaivers: true})
	withFix := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			withFix++
		}
	}
	if withFix < 2 {
		t.Fatalf("expected >=2 diagnostics carrying fixes (detached scaffold, sorted map range); got %d of %d", withFix, len(diags))
	}

	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) == 0 {
		t.Fatal("ApplyFixes changed no files")
	}

	fixed, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("fixed tree does not compile: %v", err)
	}
	for _, d := range Run([]*Package{fixed}, All(), Config{ReportUnusedWaivers: true}) {
		t.Errorf("finding survives -fix: %s", d)
	}
}
