// Package analysis provides mapspace-quality diagnostics built on top of the
// mapspace generators and the cost model: sampled-EDP distributions that
// quantify the paper's Section III-A trade-off between mapspace expansion
// and the density of high-quality mappings.
package analysis

import (
	"math/rand"
	"sort"

	"ruby/internal/mapspace"
	"ruby/internal/nest"
)

// Density summarizes the quality distribution of sampled mappings.
type Density struct {
	Samples int
	Valid   int
	// EDP quantiles over the valid samples (zero when none were valid).
	P10, P50, P90 float64
	// Best is the minimum sampled EDP.
	Best float64
}

// ValidFraction returns Valid/Samples.
func (d Density) ValidFraction() float64 {
	if d.Samples == 0 {
		return 0
	}
	return float64(d.Valid) / float64(d.Samples)
}

// MeasureDensity samples n mappings from the space and summarizes the EDP
// distribution of the valid ones.
func MeasureDensity(sp *mapspace.Space, ev *nest.Evaluator, n int, seed int64) Density {
	rng := rand.New(rand.NewSource(seed))
	d := Density{Samples: n}
	var edps []float64
	for i := 0; i < n; i++ {
		c := ev.Evaluate(sp.Sample(rng))
		if !c.Valid {
			continue
		}
		d.Valid++
		edps = append(edps, c.EDP)
	}
	if len(edps) == 0 {
		return d
	}
	sort.Float64s(edps)
	q := func(p float64) float64 {
		idx := int(p * float64(len(edps)-1))
		return edps[idx]
	}
	d.P10, d.P50, d.P90 = q(0.10), q(0.50), q(0.90)
	d.Best = edps[0]
	return d
}
