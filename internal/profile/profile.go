// Package profile wires the -cpuprofile/-memprofile flags of the CLI tools
// to runtime/pprof, so evaluation-pipeline hot paths can be inspected with
// `go tool pprof` without an HTTP server.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes a heap profile there. Either path may be empty; the stop function
// is always safe to call (and to defer) exactly once.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		}
	}
	return stop, nil
}
