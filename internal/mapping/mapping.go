// Package mapping represents mappings: the allocation, in space and time, of
// a tensor operation onto an accelerator's processing elements and memory
// hierarchy. A mapping assigns every workload dimension a tiling-factor chain
// across *slots* derived from the architecture, a per-level temporal loop
// order, and optional storage-bypass overrides.
//
// Imperfect factorization (the Ruby formulation) is first-class: a factor
// need not divide the residual dimension left over by inner slots; the final
// iteration of the corresponding loop then processes a remainder tile
// (paper eq. 5, L_n = L_{n+1}·P_n + R_n − 1, equivalently ceiling division).
package mapping

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/workload"
)

// SlotKind distinguishes the three ways a slot subdivides work.
type SlotKind uint8

const (
	// Temporal slots are for-loops iterating a level's tile over time.
	Temporal SlotKind = iota
	// SpatialX slots are parFor fanouts along the array's X axis.
	SpatialX
	// SpatialY slots are parFor fanouts along the array's Y axis.
	SpatialY
)

func (k SlotKind) String() string {
	switch k {
	case Temporal:
		return "temporal"
	case SpatialX:
		return "spatialX"
	case SpatialY:
		return "spatialY"
	default:
		return fmt.Sprintf("SlotKind(%d)", uint8(k))
	}
}

// Slot is one position in the global tiling chain.
type Slot struct {
	Index     int      // position in the outermost-first slot list
	Level     int      // arch level owning the slot
	Kind      SlotKind // temporal or spatial axis
	Fanout    int      // capacity of a spatial slot; 0 for temporal
	Multicast bool     // whether the spatial slot's network multicasts
}

// Spatial reports whether the slot is a parFor.
func (s Slot) Spatial() bool { return s.Kind != Temporal }

// Slots derives the global slot list from an architecture, outermost-first.
// Each level contributes a temporal slot followed by its spatial fanout slots
// (Y then X — the spatial split is inside the level's temporal loops). Spatial
// slots with fanout 1 are omitted.
func Slots(a *arch.Arch) []Slot {
	var out []Slot
	for li := range a.Levels {
		l := &a.Levels[li]
		out = append(out, Slot{Index: len(out), Level: li, Kind: Temporal})
		if l.Fanout.FanoutY > 1 {
			out = append(out, Slot{
				Index: len(out), Level: li, Kind: SpatialY,
				Fanout: l.Fanout.FanoutY, Multicast: l.Fanout.Multicast,
			})
		}
		if l.Fanout.FanoutX > 1 {
			out = append(out, Slot{
				Index: len(out), Level: li, Kind: SpatialX,
				Fanout: l.Fanout.FanoutX, Multicast: l.Fanout.Multicast,
			})
		}
	}
	return out
}

// FirstSlotOfLevel returns the index of level li's temporal slot within the
// slot list produced by Slots. The data resident at level li is the tile
// covered by that slot and everything inner.
func FirstSlotOfLevel(slots []Slot, li int) int {
	for _, s := range slots {
		if s.Level == li && s.Kind == Temporal {
			return s.Index
		}
	}
	panic(fmt.Sprintf("mapping: no temporal slot for level %d", li))
}

// Mapping is one point of a mapspace.
type Mapping struct {
	// Factors maps each workload dimension to its per-slot tiling factors,
	// indexed by Slot.Index (outermost-first). Residual semantics apply
	// innermost-first: r := bound; for each slot from innermost to outermost
	// r = ceil(r / f). A complete chain ends with r == 1.
	Factors map[string][]int

	// Perms gives, per architecture level, the order of that level's
	// temporal loops, outermost-first. Each entry must be a permutation of
	// all workload dimension names. Loops with a single trip are ignored by
	// the cost model, so only the relative order of multi-trip dims matters.
	Perms [][]string

	// Keep optionally overrides which roles are stored per level (bypass).
	// nil, or a nil entry, means the architecture's default. Level 0 (DRAM)
	// always keeps everything.
	Keep []map[workload.Role]bool

	// key memoizes the last Key result (the evaluation-cache hot path).
	// Invariant: a mapping that has been keyed must not be mutated in
	// place — Clone first (as every searcher does) or call Invalidate
	// after the mutation. Clone does not copy the memo.
	key atomic.Pointer[keyMemo]

	// dense memoizes the integer-indexed lowering read by the compiled
	// evaluation plan, under the same mutation invariant as key. spare and
	// spareMemo recycle the previous lowering's storage (and its memo
	// record) across Invalidate calls so sampler loops that reuse one
	// Mapping stay allocation-free.
	dense     atomic.Pointer[denseMemo]
	spare     *Dense
	spareMemo *denseMemo
}

// keyMemo records a computed key together with the identity of the
// (workload, slots) pair it was computed against, so a stale memo is never
// served to a different evaluator.
type keyMemo struct {
	w      *workload.Workload
	nslots int
	slot0  *Slot
	key    string
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Factors: make(map[string][]int, len(m.Factors))}
	for d, fs := range m.Factors {
		c.Factors[d] = append([]int(nil), fs...)
	}
	c.Perms = make([][]string, len(m.Perms))
	for i, p := range m.Perms {
		c.Perms[i] = append([]string(nil), p...)
	}
	if m.Keep != nil {
		c.Keep = make([]map[workload.Role]bool, len(m.Keep))
		for i, k := range m.Keep {
			if k == nil {
				continue
			}
			c.Keep[i] = make(map[workload.Role]bool, len(k))
			for r, v := range k {
				c.Keep[i][r] = v
			}
		}
	}
	return c
}

// Chain precomputes per-dimension tiling geometry for one mapping.
type Chain struct {
	Bound   int
	Factors []int // outermost-first, one per slot
	// Cum[i] is the dimension extent covered by slots i..end, clipped to the
	// bound: the tile size "at" slot i. Cum[len(Factors)] == 1.
	Cum []int
}

// NewChain builds chain geometry from outermost-first factors.
func NewChain(bound int, factors []int) Chain {
	c := Chain{Bound: bound, Factors: factors}
	c.Cum = make([]int, len(factors)+1)
	c.Cum[len(factors)] = 1
	prod := 1
	for i := len(factors) - 1; i >= 0; i-- {
		if prod < bound { // avoid overflow once clipped
			prod *= factors[i]
		}
		if prod > bound {
			prod = bound
		}
		c.Cum[i] = prod
	}
	return c
}

// Trips returns the loop trip count at slot i: the number of inner subtiles
// (the last possibly partial) iterated to cover the slot's tile.
func (c Chain) Trips(i int) int {
	if c.Cum[i+1] >= c.Cum[i] {
		return 1
	}
	return factor.CeilDiv(c.Cum[i], c.Cum[i+1])
}

// Remainder returns the size of the final (partial) subtile at slot i; it
// equals Cum[i+1] exactly when the slot factors perfectly.
func (c Chain) Remainder(i int) int {
	r := c.Cum[i] % c.Cum[i+1]
	if r == 0 {
		return c.Cum[i+1]
	}
	return r
}

// Perfect reports whether slot i divides evenly.
func (c Chain) Perfect(i int) bool { return c.Cum[i]%c.Cum[i+1] == 0 }

// Chains builds chain geometry for every dimension of w. It returns an error
// if a dimension is missing, has the wrong arity, or does not form a complete
// covering chain.
func (m *Mapping) Chains(w *workload.Workload, slots []Slot) (map[string]Chain, error) {
	out := make(map[string]Chain, len(w.Dims))
	for _, d := range w.Dims {
		fs, ok := m.Factors[d.Name]
		if !ok {
			return nil, fmt.Errorf("mapping: no factors for dim %q", d.Name)
		}
		if len(fs) != len(slots) {
			return nil, fmt.Errorf("mapping: dim %q has %d factors for %d slots", d.Name, len(fs), len(slots))
		}
		// Structural validity: the chain must cover the bound under ceiling
		// semantics (any-kind slots). Mapspace-specific divisibility rules
		// are enforced by the generators, not here.
		rev := make([]int, len(fs))
		for i, f := range fs {
			rev[len(fs)-1-i] = f
		}
		imperfect := make([]factor.ChainSlot, len(fs))
		for i := range imperfect {
			imperfect[i].Kind = factor.Imperfect
		}
		if err := factor.ValidateChain(d.Bound, imperfect, rev); err != nil {
			return nil, fmt.Errorf("mapping: dim %q: %w", d.Name, err)
		}
		out[d.Name] = NewChain(d.Bound, fs)
	}
	return out, nil
}

// ValidatePerms checks that Perms has one complete permutation per level.
func (m *Mapping) ValidatePerms(w *workload.Workload, a *arch.Arch) error {
	if len(m.Perms) != len(a.Levels) {
		return fmt.Errorf("mapping: %d perms for %d levels", len(m.Perms), len(a.Levels))
	}
	want := w.DimNames()
	for li, p := range m.Perms {
		if len(p) != len(want) {
			return fmt.Errorf("mapping: level %d perm has %d dims, want %d", li, len(p), len(want))
		}
		seen := make(map[string]bool, len(p))
		for _, d := range p {
			seen[d] = true
		}
		for _, d := range want {
			if !seen[d] {
				return fmt.Errorf("mapping: level %d perm missing dim %q", li, d)
			}
		}
	}
	return nil
}

// KeptRoles resolves which roles are stored at level li, combining the
// architecture's policy with the mapping's bypass overrides.
func (m *Mapping) KeptRoles(a *arch.Arch, li int) map[workload.Role]bool {
	out := make(map[workload.Role]bool, 3)
	l := &a.Levels[li]
	for _, r := range workload.Roles {
		keeps := l.KeepsRole(r, li == 0)
		if li != 0 && m.Keep != nil && li < len(m.Keep) && m.Keep[li] != nil {
			keeps = keeps && m.Keep[li][r]
		}
		if keeps {
			out[r] = true
		}
	}
	return out
}

// Key returns a canonical string identifying the mapping (for dedup and
// deterministic test assertions). Dims are sorted; single-trip loops are
// dropped from permutations.
func (m *Mapping) Key(w *workload.Workload, slots []Slot) string {
	var slot0 *Slot
	if len(slots) > 0 {
		slot0 = &slots[0]
	}
	if km := m.key.Load(); km != nil && km.w == w && km.nslots == len(slots) && km.slot0 == slot0 {
		return km.key
	}
	s := m.computeKey(w, slots)
	m.key.Store(&keyMemo{w: w, nslots: len(slots), slot0: slot0, key: s})
	return s
}

func (m *Mapping) computeKey(w *workload.Workload, slots []Slot) string {
	// This is the hot path of the evaluation memo cache: built with append
	// and strconv rather than fmt so that keying a mapping stays much cheaper
	// than evaluating it.
	dims := w.SortedDimNames()
	// Cumulative tile sizes (Chain.Cum) for every dim, packed into one flat
	// backing array with stride nf+1 to avoid a per-dim allocation.
	nf := 0
	for _, d := range dims {
		if n := len(m.Factors[d]); n > nf {
			nf = n
		}
	}
	cum := make([]int, len(dims)*(nf+1))
	buf := make([]byte, 0, 32*len(dims))
	for i, d := range dims {
		fs := m.Factors[d]
		buf = append(buf, d...)
		buf = append(buf, '=')
		for _, f := range fs {
			buf = strconv.AppendInt(buf, int64(f), 10)
			buf = append(buf, '.')
		}
		buf = append(buf, ';')
		row := cum[i*(nf+1):]
		row[len(fs)] = 1
		bound := w.Bound(d)
		prod := 1
		for j := len(fs) - 1; j >= 0; j-- {
			if prod < bound {
				prod *= fs[j]
			}
			if prod > bound {
				prod = bound
			}
			row[j] = prod
		}
	}
	for li, p := range m.Perms {
		ti := FirstSlotOfLevel(slots, li)
		buf = append(buf, 'p')
		buf = strconv.AppendInt(buf, int64(li), 10)
		buf = append(buf, '=')
		first := true
		for _, d := range p {
			active := false
			for j := range dims {
				if dims[j] == d {
					row := cum[j*(nf+1):]
					active = row[ti+1] < row[ti] // Trips(ti) > 1
					break
				}
			}
			if !active {
				continue
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = append(buf, d...)
		}
		buf = append(buf, ';')
	}
	if m.Keep != nil {
		for li, k := range m.Keep {
			if k == nil {
				continue
			}
			var rs []string
			for r, v := range k {
				if v {
					rs = append(rs, r.String())
				}
			}
			sort.Strings(rs)
			buf = append(buf, 'k')
			buf = strconv.AppendInt(buf, int64(li), 10)
			buf = append(buf, '=')
			buf = append(buf, strings.Join(rs, ",")...)
			buf = append(buf, ';')
		}
	}
	return string(buf)
}

// DefaultPerms returns a uniform permutation (declaration order) for every
// level.
func DefaultPerms(w *workload.Workload, a *arch.Arch) [][]string {
	p := make([][]string, len(a.Levels))
	for i := range p {
		p[i] = w.DimNames()
	}
	return p
}

// Uniform builds the trivial mapping placing the entire iteration space in
// the temporal slot of the given level (all other factors 1). It is the
// canonical "exists for every workload" starting point.
func Uniform(w *workload.Workload, a *arch.Arch, level int) *Mapping {
	slots := Slots(a)
	ti := FirstSlotOfLevel(slots, level)
	m := &Mapping{
		Factors: make(map[string][]int, len(w.Dims)),
		Perms:   DefaultPerms(w, a),
	}
	for _, d := range w.Dims {
		fs := make([]int, len(slots))
		for i := range fs {
			fs[i] = 1
		}
		fs[ti] = d.Bound
		m.Factors[d.Name] = fs
	}
	return m
}

// String renders the mapping as an annotated loop nest in the style of the
// paper's Fig. 3: per level, its temporal loops (in permutation order) and
// spatial parFors, with imperfect loops annotated by their remainder.
func (m *Mapping) Render(w *workload.Workload, a *arch.Arch) string {
	slots := Slots(a)
	chains, err := m.Chains(w, slots)
	if err != nil {
		return fmt.Sprintf("<invalid mapping: %v>", err)
	}
	var b strings.Builder
	indent := 0
	writeLoop := func(kw, d string, trips, sub, rem int) {
		b.WriteString(strings.Repeat("  ", indent))
		if rem == sub {
			fmt.Fprintf(&b, "%s %s in [0:%d) step %d\n", kw, strings.ToLower(d), trips, sub)
		} else {
			fmt.Fprintf(&b, "%s %s in [0:%d) step %d (last: %d)\n", kw, strings.ToLower(d), trips, sub, rem)
		}
		indent++
	}
	for _, s := range slots {
		if s.Kind == Temporal {
			b.WriteString(strings.Repeat("  ", indent))
			fmt.Fprintf(&b, "--- %s ---\n", a.Levels[s.Level].Name)
			for _, d := range m.Perms[s.Level] {
				c := chains[d]
				if tr := c.Trips(s.Index); tr > 1 {
					writeLoop("for", d, tr, c.Cum[s.Index+1], c.Remainder(s.Index))
				}
			}
		} else {
			for _, d := range w.DimNames() {
				c := chains[d]
				if tr := c.Trips(s.Index); tr > 1 {
					writeLoop("parFor", d, tr, c.Cum[s.Index+1], c.Remainder(s.Index))
				}
			}
		}
	}
	b.WriteString(strings.Repeat("  ", indent))
	b.WriteString("mac()\n")
	return b.String()
}
