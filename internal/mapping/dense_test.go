package mapping

import (
	"reflect"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/workload"
)

// denseFixture is a three-dimension GEMM on the Eyeriss-like hierarchy
// (5 slots, 3 levels), big enough that every patch method touches a
// non-trivial row.
func denseFixture() (*workload.Workload, *arch.Arch, []Slot, *Mapping) {
	w := workload.MustMatmul("mm", 24, 12, 30)
	a := arch.EyerissLike(14, 12, 128)
	slots := Slots(a)
	return w, a, slots, Uniform(w, a, 0)
}

// requireDensesEqual compares a patched-in-place lowering against a
// from-scratch lowering of the same mapping state.
func requireDensesEqual(t *testing.T, got, want *Dense) {
	t.Helper()
	if got.NDims != want.NDims || got.NSlots != want.NSlots {
		t.Fatalf("shape (%d,%d), want (%d,%d)", got.NDims, got.NSlots, want.NDims, want.NSlots)
	}
	if !reflect.DeepEqual(got.Cum, want.Cum) {
		t.Errorf("Cum = %v, want %v", got.Cum, want.Cum)
	}
	if !reflect.DeepEqual(got.Perm, want.Perm) {
		t.Errorf("Perm = %v, want %v", got.Perm, want.Perm)
	}
	// Compare masks by value: patching may leave a non-nil zero-length
	// slice where a fresh lowering produces nil.
	if len(got.KeepMask) != len(want.KeepMask) {
		t.Fatalf("KeepMask = %v, want %v", got.KeepMask, want.KeepMask)
	}
	for i := range got.KeepMask {
		if got.KeepMask[i] != want.KeepMask[i] {
			t.Errorf("KeepMask = %v, want %v", got.KeepMask, want.KeepMask)
			break
		}
	}
}

// freshDense lowers a clone of m from scratch.
func freshDense(t *testing.T, m *Mapping, w *workload.Workload, a *arch.Arch, slots []Slot) *Dense {
	t.Helper()
	dn, err := m.Clone().Dense(w, a, slots)
	if err != nil {
		t.Fatalf("fresh Dense: %v", err)
	}
	return dn
}

func TestSetChainRowMatchesDensify(t *testing.T) {
	w, a, slots, m := denseFixture()
	dn, err := m.Dense(w, a, slots)
	if err != nil {
		t.Fatal(err)
	}
	// Retile M across DRAM temporal, GLB temporal and the PE temporal slot.
	m.Factors["M"] = []int{2, 2, 1, 1, 6}
	dn.SetChainRow(int(w.DimID("M")), w.Bound("M"), m.Factors["M"])
	requireDensesEqual(t, dn, freshDense(t, m, w, a, slots))

	// An imperfect chain (5*5 covers 24 with a remainder tile) lowers the
	// same way: cumulative sizes clamp at the bound.
	m.Factors["M"] = []int{5, 5, 1, 1, 1}
	dn.SetChainRow(int(w.DimID("M")), w.Bound("M"), m.Factors["M"])
	requireDensesEqual(t, dn, freshDense(t, m, w, a, slots))
}

func TestSetPermRowIDsMatchesDensify(t *testing.T) {
	w, a, slots, m := denseFixture()
	dn, err := m.Dense(w, a, slots)
	if err != nil {
		t.Fatal(err)
	}
	m.Perms[1] = []string{"K", "M", "N"}
	dn.SetPermRowIDs(1, []int16{2, 0, 1})
	requireDensesEqual(t, dn, freshDense(t, m, w, a, slots))
}

func TestSetKeepMaskMatchesDensify(t *testing.T) {
	w, a, slots, m := denseFixture()
	dn, err := m.Dense(w, a, slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(dn.KeepMask) != 0 {
		t.Fatalf("KeepMask = %v before any override", dn.KeepMask)
	}

	// Override the GLB to bypass weights; the mask array must grow to
	// len(m.Keep) with -1 sentinels, exactly as densify produces it.
	m.Keep = make([]map[workload.Role]bool, len(a.Levels))
	m.Keep[1] = map[workload.Role]bool{
		workload.Input:  true,
		workload.Weight: false,
		workload.Output: true,
	}
	mask := int8(RoleBit(workload.Input) | RoleBit(workload.Output))
	dn.SetKeepMask(1, len(m.Keep), mask)
	requireDensesEqual(t, dn, freshDense(t, m, w, a, slots))

	// TruncKeepMask reverses the growth bit for bit.
	m.Keep = nil
	dn.TruncKeepMask(0)
	requireDensesEqual(t, dn, freshDense(t, m, w, a, slots))
}
