package mapping

import (
	"strings"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/workload"
)

func TestRenderTreePaperExample(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a) // [1, 17, 6] over 100
	out := m.RenderTree(w, a, "X")
	for _, frag := range []string{
		"X = 100",
		"GLB for x17 -> tile 6 (last 4)",
		"16x full branch",
		"rem branch (4)",
		"parFor",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("tree missing %q:\n%s", frag, out)
		}
	}
}

func TestRenderTreePerfectChainIsLinear(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 20, 5}
	out := m.RenderTree(w, a, "X")
	if strings.Contains(out, "rem") {
		t.Errorf("perfect chain should have no remainder branches:\n%s", out)
	}
	if !strings.Contains(out, "for x20 -> tile 5") {
		t.Errorf("tree missing main split:\n%s", out)
	}
}

func TestRenderTreeUnknownDim(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a)
	if out := m.RenderTree(w, a, "Z"); !strings.Contains(out, "no chain") {
		t.Errorf("unknown dim: %s", out)
	}
}

func TestRenderTreeDeepImperfect(t *testing.T) {
	// Doubly imperfect chain: D=10, factors [2, 2, 3]: DRAM tiles 6 and 4,
	// each split at the GLB.
	w := workload.MustVector1D("d10", 10)
	a := arch.ToyGLB(4, 512)
	m := Uniform(w, a, 1)
	m.Factors["X"] = []int{2, 2, 3}
	out := m.RenderTree(w, a, "X")
	if !strings.Contains(out, "(last 4)") {
		t.Errorf("outer remainder missing:\n%s", out)
	}
	if !strings.Contains(out, "rem branch (4)") {
		t.Errorf("remainder subtree missing:\n%s", out)
	}
	// The remainder branch of 4 itself splits 3+1 at the GLB slot.
	if !strings.Contains(out, "(last 1)") {
		t.Errorf("nested remainder missing:\n%s", out)
	}
}
