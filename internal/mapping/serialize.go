package mapping

import (
	"encoding/json"
	"fmt"
	"strings"

	"ruby/internal/workload"
)

// jsonMapping is the stable on-disk form of a Mapping. Roles serialize as
// lower-case names so saved mappings stay readable and diffable.
type jsonMapping struct {
	Factors map[string][]int  `json:"factors"`
	Perms   [][]string        `json:"perms"`
	Keep    []map[string]bool `json:"keep,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	out := jsonMapping{Factors: m.Factors, Perms: m.Perms}
	if m.Keep != nil {
		out.Keep = make([]map[string]bool, len(m.Keep))
		for i, k := range m.Keep {
			if k == nil {
				continue
			}
			out.Keep[i] = make(map[string]bool, len(k))
			for r, v := range k {
				out.Keep[i][strings.ToLower(r.String())] = v
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var in jsonMapping
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("mapping: decode: %w", err)
	}
	m.Factors = in.Factors
	m.Perms = in.Perms
	m.Keep = nil
	if in.Keep != nil {
		m.Keep = make([]map[workload.Role]bool, len(in.Keep))
		for i, k := range in.Keep {
			if k == nil {
				continue
			}
			m.Keep[i] = make(map[workload.Role]bool, len(k))
			for name, v := range k {
				r, err := workload.ParseRole(name)
				if err != nil {
					return fmt.Errorf("mapping: keep[%d]: %w", i, err)
				}
				m.Keep[i][r] = v
			}
		}
	}
	return nil
}

// Encode renders the mapping as indented JSON.
func (m *Mapping) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Decode parses a mapping previously produced by Encode and validates it
// structurally against the workload and architecture slot count.
func Decode(data []byte, w *workload.Workload, slots []Slot) (*Mapping, error) {
	m := &Mapping{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	if _, err := m.Chains(w, slots); err != nil {
		return nil, err
	}
	return m, nil
}
