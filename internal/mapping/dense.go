package mapping

import (
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/workload"
)

// Dense is the integer-indexed lowering of one mapping against a fixed
// (workload, architecture, slot list): cumulative tile sizes per dimension,
// per-level loop orders as dimension ids, and per-level bypass bitmasks.
// It is produced once per mapping (memoized on the Mapping) and read by the
// compiled evaluation plan (internal/nest.Plan) without any string lookups
// or map traffic.
//
// Dimensions are identified by their index in the workload's declaration
// order; roles by the bit 1<<role (see RoleBit).
type Dense struct {
	NDims  int
	NSlots int

	// Cum holds Chain.Cum for every dimension, flattened with stride
	// NSlots+1: Cum[d*(NSlots+1)+i] is the tile extent of dimension d at
	// slot i, and the final entry of each row is 1.
	Cum []int

	// Perm holds the per-level temporal loop orders as dimension ids,
	// flattened with stride NDims (levels indexed as in the architecture).
	Perm []int16

	// KeepMask mirrors Mapping.Keep: one entry per override level (its
	// length is len(Mapping.Keep), possibly zero). The sentinel -1 means
	// "no override at this level"; otherwise bit RoleBit(r) is set iff the
	// override keeps role r.
	KeepMask []int8
}

// RoleBit returns the bit identifying role r in dense keep masks.
func RoleBit(r workload.Role) uint8 { return 1 << uint8(r) }

// CumAt returns the tile extent of dimension d at slot si.
//
//ruby:hotpath
func (dn *Dense) CumAt(d, si int) int { return dn.Cum[d*(dn.NSlots+1)+si] }

// TripsAt returns the loop trip count of dimension d at slot si, matching
// Chain.Trips bit for bit.
//
//ruby:hotpath
func (dn *Dense) TripsAt(d, si int) int {
	base := d * (dn.NSlots + 1)
	outer, inner := dn.Cum[base+si], dn.Cum[base+si+1]
	if inner >= outer {
		return 1
	}
	return (outer + inner - 1) / inner
}

// DenseError reports why a mapping could not be lowered. Stage is "chains"
// or "perms", matching the prefixes the legacy nest.Evaluator puts on its
// invalid-cost reasons, and Err carries the exact legacy message.
type DenseError struct {
	Stage string
	Err   error
}

func (e *DenseError) Error() string { return e.Stage + ": " + e.Err.Error() }
func (e *DenseError) Unwrap() error { return e.Err }

// denseMemo records a lowered form together with the identity of the
// (workload, arch, slots) triple it was computed against, so a stale dense
// form is never served to a different evaluator.
type denseMemo struct {
	w      *workload.Workload
	a      *arch.Arch
	nslots int
	d      *Dense
}

// Dense returns the mapping's lowered form for the given evaluator context,
// computing and memoizing it on first use. The same mutation invariant as
// Key applies: a mapping that has been lowered must not be mutated in place
// except through Invalidate (which SampleInto-style reusers call) or the
// Set* patch methods below (which mapspace.Move uses).
//
//ruby:hotpath
func (m *Mapping) Dense(w *workload.Workload, a *arch.Arch, slots []Slot) (*Dense, error) {
	if dm := m.dense.Load(); dm != nil && dm.w == w && dm.a == a && dm.nslots == len(slots) {
		return dm.d, nil
	}
	spare := m.spare
	m.spare = nil
	d, err := m.densify(w, a, slots, spare)
	if err != nil {
		m.spare = spare // keep the storage for a future successful lowering
		return nil, err
	}
	memo := m.spareMemo
	if memo == nil {
		memo = &denseMemo{}
	}
	m.spareMemo = nil
	memo.w, memo.a, memo.nslots, memo.d = w, a, len(slots), d
	m.dense.Store(memo)
	return d, nil
}

// UpdatableDense returns the memoized lowered form when it was computed
// against exactly this evaluator context, and nil otherwise. Unlike Dense it
// never lowers: it is the hook Move.Apply/Undo use to patch the dense form
// in place (via SetChainRow/SetPermRowIDs/SetKeepMask) instead of invalidating
// it wholesale. The single-owner mutation contract of Invalidate applies.
//
//ruby:hotpath
func (m *Mapping) UpdatableDense(w *workload.Workload, a *arch.Arch, slots []Slot) *Dense {
	if dm := m.dense.Load(); dm != nil && dm.w == w && dm.a == a && dm.nslots == len(slots) {
		return dm.d
	}
	return nil
}

// ResetKey clears only the memoized canonical key, keeping the dense form.
// Moves that patch the dense form in place call this so Key stays consistent
// with the mutated mapping.
func (m *Mapping) ResetKey() { m.key.Store(nil) }

// Invalidate clears the memoized key and dense forms after an in-place
// mutation. The dense storage (and its memo record) is recycled into the
// next lowering so that sampler loops reusing one Mapping stay
// allocation-free at steady state. Invalidate-and-reuse is single-owner by
// design: it must not race with concurrent readers of the same Mapping
// (every searcher that shares mappings across goroutines clones them first).
func (m *Mapping) Invalidate() {
	if dm := m.dense.Load(); dm != nil {
		m.spare = dm.d
		m.spareMemo = dm
	}
	m.dense.Store(nil)
	m.key.Store(nil)
}

// SetChainRow recomputes dimension di's cumulative-tile row in place for the
// new outermost-first factor chain fs, exactly as densify lowers it. The
// caller guarantees fs is a structurally valid chain over bound (Move
// proposals are valid by construction).
//
//ruby:hotpath
func (dn *Dense) SetChainRow(di, bound int, fs []int) {
	stride := dn.NSlots + 1
	row := dn.Cum[di*stride : di*stride+stride]
	row[dn.NSlots] = 1
	prod := 1
	for i := dn.NSlots - 1; i >= 0; i-- {
		if prod < bound {
			prod *= fs[i]
		}
		if prod > bound {
			prod = bound
		}
		row[i] = prod
	}
}

// SetPermRowIDs relowers level li's temporal loop order in place from
// workload dimension ids (declaration order), exactly as densify lowers the
// equivalent name permutation. Movers keep id arrays in lockstep with their
// name permutations so the hot patch path never compares strings.
//
//ruby:hotpath
func (dn *Dense) SetPermRowIDs(li int, ids []int16) {
	copy(dn.Perm[li*dn.NDims:], ids)
}

// SetKeepMask writes the bypass-override mask of level li, first growing the
// override array to n entries (filled with the -1 "no override" sentinel) so
// its length tracks len(Mapping.Keep) exactly as densify produces it.
//
//ruby:hotpath
func (dn *Dense) SetKeepMask(li, n int, mask int8) {
	if cap(dn.KeepMask) < n {
		grown := make([]int8, n)
		copy(grown, dn.KeepMask)
		for i := len(dn.KeepMask); i < n; i++ {
			grown[i] = -1
		}
		dn.KeepMask = grown
	} else if len(dn.KeepMask) < n {
		old := len(dn.KeepMask)
		dn.KeepMask = dn.KeepMask[:n]
		for i := old; i < n; i++ {
			dn.KeepMask[i] = -1
		}
	}
	dn.KeepMask[li] = mask
}

// TruncKeepMask shrinks the override array back to n entries — the exact
// reversal of a SetKeepMask growth, used by Move.Undo when the move created
// the override storage.
func (dn *Dense) TruncKeepMask(n int) {
	if n < len(dn.KeepMask) {
		dn.KeepMask = dn.KeepMask[:n]
	}
}

// densify lowers the mapping, validating exactly as the legacy evaluation
// path does (Chains, then ValidatePerms) with identical error messages and
// detection order. The recycle argument, when shape-compatible, provides
// the backing storage.
//
//ruby:hotpath
func (m *Mapping) densify(w *workload.Workload, a *arch.Arch, slots []Slot, recycle *Dense) (*Dense, error) {
	nd, ns, nl := len(w.Dims), len(slots), len(a.Levels)
	stride := ns + 1
	d := recycle
	if d == nil || d.NDims != nd || d.NSlots != ns || len(d.Perm) != nl*nd {
		d = &Dense{
			NDims:  nd,
			NSlots: ns,
			Cum:    make([]int, nd*stride),
			Perm:   make([]int16, nl*nd),
		}
	}
	d.KeepMask = d.KeepMask[:0]

	chainsErr := func(err error) (*Dense, error) {
		return nil, &DenseError{Stage: "chains", Err: err} //ruby:allow hotpath -- invalid-mapping exit; the steady state returns the memoized form
	}
	for di := range w.Dims {
		dim := &w.Dims[di]
		fs, ok := m.Factors[dim.Name]
		if !ok {
			return chainsErr(fmt.Errorf("mapping: no factors for dim %q", dim.Name))
		}
		if len(fs) != ns {
			return chainsErr(fmt.Errorf("mapping: dim %q has %d factors for %d slots", dim.Name, len(fs), ns))
		}
		// Structural validity under ceiling semantics, replicating
		// factor.ValidateChain over all-imperfect slots (innermost-first
		// slot indices in the messages, as the legacy path reports them).
		r := dim.Bound
		for i := 0; i < ns; i++ {
			f := fs[ns-1-i]
			var ferr error
			switch {
			case f < 1:
				ferr = fmt.Errorf("factor: slot %d factor %d < 1", i, f)
			case r == 1 && f != 1:
				ferr = fmt.Errorf("factor: slot %d factor %d after residual reached 1", i, f)
			case r > 1 && f > r:
				ferr = fmt.Errorf("factor: slot %d factor %d exceeds residual %d", i, f, r)
			}
			if ferr != nil {
				return chainsErr(fmt.Errorf("mapping: dim %q: %w", dim.Name, ferr))
			}
			if r > 1 {
				r = factor.CeilDiv(r, f)
			}
		}
		if r != 1 {
			return chainsErr(fmt.Errorf("mapping: dim %q: %w", dim.Name,
				fmt.Errorf("factor: chain leaves residual %d over dimension %d", r, dim.Bound)))
		}
		// Cumulative tile sizes, exactly as NewChain computes them.
		row := d.Cum[di*stride : di*stride+stride]
		row[ns] = 1
		prod := 1
		for i := ns - 1; i >= 0; i-- {
			if prod < dim.Bound {
				prod *= fs[i]
			}
			if prod > dim.Bound {
				prod = dim.Bound
			}
			row[i] = prod
		}
	}

	permsErr := func(err error) (*Dense, error) {
		return nil, &DenseError{Stage: "perms", Err: err} //ruby:allow hotpath -- invalid-mapping exit; the steady state returns the memoized form
	}
	if len(m.Perms) != nl {
		return permsErr(fmt.Errorf("mapping: %d perms for %d levels", len(m.Perms), nl))
	}
	for li, perm := range m.Perms {
		if len(perm) != nd {
			return permsErr(fmt.Errorf("mapping: level %d perm has %d dims, want %d", li, len(perm), nd))
		}
		base := li * nd
		var seen uint64
		for k, name := range perm {
			id := w.DimID(name)
			d.Perm[base+k] = id
			if id >= 0 && id < 64 {
				seen |= 1 << uint(id)
			}
		}
		// Completeness check: one bitmask compare on the common path; the
		// quadratic rescan runs only to locate the first missing dimension
		// for the exact legacy error message (or when there are more
		// dimensions than mask bits).
		if nd < 64 && seen == (uint64(1)<<uint(nd))-1 || nd == 64 && seen == ^uint64(0) {
			continue
		}
		for dj := range w.Dims {
			found := false
			for k := 0; k < nd; k++ {
				if d.Perm[base+k] == int16(dj) {
					found = true
					break
				}
			}
			if !found {
				return permsErr(fmt.Errorf("mapping: level %d perm missing dim %q", li, w.Dims[dj].Name))
			}
		}
	}

	if m.Keep != nil {
		if cap(d.KeepMask) < len(m.Keep) {
			d.KeepMask = make([]int8, len(m.Keep))
		} else {
			d.KeepMask = d.KeepMask[:len(m.Keep)]
		}
		for li, k := range m.Keep {
			if k == nil {
				d.KeepMask[li] = -1
				continue
			}
			var mask int8
			for _, r := range workload.Roles {
				if k[r] {
					mask |= int8(RoleBit(r))
				}
			}
			d.KeepMask[li] = mask
		}
	}
	return d, nil
}
