package mapping

import "ruby/internal/workload"

// DeltaKind enumerates the aspects of a mapping a single move can change.
type DeltaKind uint8

const (
	// DeltaChain replaces one dimension's tiling-factor chain.
	DeltaChain DeltaKind = iota
	// DeltaPerm replaces one level's temporal loop order.
	DeltaPerm
	// DeltaKeep toggles one (level, role) storage-bypass bit.
	DeltaKeep
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaChain:
		return "chain"
	case DeltaPerm:
		return "perm"
	case DeltaKeep:
		return "keep"
	default:
		return "DeltaKind(?)"
	}
}

// Delta is the integer-id description of one move: which single aspect of a
// mapping changed. It is what the incremental evaluation kernel
// (nest.Plan.EvaluateDelta) consumes to decide which cached per-scope
// contributions to recompute. Deltas are produced by mapspace.Move, which
// owns the corresponding in-place edits of the Mapping and its lowered form.
type Delta struct {
	Kind DeltaKind
	// Dim is the changed dimension's id (workload declaration order) for
	// DeltaChain moves.
	Dim int
	// Level is the affected architecture level for DeltaPerm and DeltaKeep
	// moves.
	Level int
	// Role is the toggled role for DeltaKeep moves.
	Role workload.Role
}
