package mapping

import (
	"strings"
	"testing"

	"ruby/internal/workload"
)

func TestMappingJSONRoundTrip(t *testing.T) {
	w, a := toyWork(), toyArch()
	slots := Slots(a)
	m := paperToyMapping(w, a)
	m.Keep = []map[workload.Role]bool{nil, {workload.Input: true, workload.Output: false}, nil}

	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"input"`) {
		t.Errorf("roles should serialize as names:\n%s", data)
	}
	got, err := Decode(data, w, slots)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key(w, slots) != m.Key(w, slots) {
		t.Errorf("round trip changed the mapping:\n%s\nvs\n%s", got.Key(w, slots), m.Key(w, slots))
	}
	if !got.Keep[1][workload.Input] || got.Keep[1][workload.Output] {
		t.Errorf("keep round trip wrong: %+v", got.Keep)
	}
}

func TestMappingJSONNoKeep(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "keep") {
		t.Error("empty keep should be omitted")
	}
	if _, err := Decode(data, w, Slots(a)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	w, a := toyWork(), toyArch()
	slots := Slots(a)
	cases := []string{
		`{`,
		`{"factors": {"X": [1, 2]}}`, // wrong arity
		`{"factors": {"X": [1, 2, 6]}, "perms": [[],[],[]]}`, // incomplete chain
		`{"factors": {"X": [1,17,6]}, "perms": [["X"],["X"],["X"]], "keep": [null, {"psum": true}, null]}`,
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c), w, slots); err == nil {
			t.Errorf("Decode(%q) succeeded", c)
		}
	}
}

func TestParseRole(t *testing.T) {
	for _, c := range []struct {
		s    string
		want workload.Role
	}{{"input", workload.Input}, {"Weight", workload.Weight}, {"OUTPUT", workload.Output}} {
		got, err := workload.ParseRole(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseRole(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := workload.ParseRole("psum"); err == nil {
		t.Error("unknown role accepted")
	}
}
