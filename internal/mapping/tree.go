package mapping

import (
	"fmt"
	"strings"

	"ruby/internal/arch"
	"ruby/internal/workload"
)

// RenderTree renders one dimension's tiling chain as the tree representation
// of the paper's Figs. 4-6: each slot splits its tile into full subtiles and
// (for imperfect factorization) a remainder branch. Identical sibling
// subtrees are collapsed with a multiplicity prefix, so perfect chains stay
// single-path while Ruby chains show their remainder branches explicitly.
//
//	X = 100
//	`- DRAM for x1 -> tile 100
//	   `- GLB for x17 -> tile 6
//	      |- 16x parFor x6 -> tile 1
//	      `- rem parFor x4 -> tile 1
func (m *Mapping) RenderTree(w *workload.Workload, a *arch.Arch, dim string) string {
	slots := Slots(a)
	fs, ok := m.Factors[dim]
	if !ok || len(fs) != len(slots) {
		return fmt.Sprintf("<no chain for dimension %s>", dim)
	}
	ch := NewChain(w.Bound(dim), fs)

	var b strings.Builder
	fmt.Fprintf(&b, "%s = %d\n", dim, w.Bound(dim))
	renderTreeNode(&b, a, slots, ch, w.Bound(dim), 0, "")
	return b.String()
}

// renderTreeNode renders the subtree covering a chunk of the dimension
// starting at slot si.
func renderTreeNode(b *strings.Builder, a *arch.Arch, slots []Slot, ch Chain, chunk, si int, indent string) {
	if si == len(slots) {
		return
	}
	s := slots[si]
	sub := ch.Cum[si+1]
	kw := "for"
	if s.Spatial() {
		kw = "parFor"
	}
	level := a.Levels[s.Level].Name

	if sub >= chunk {
		// Degenerate slot (single trip): only descend if something inner
		// still splits.
		if ch.Cum[si] > 1 && trueAnywhereBelow(ch, chunk, si+1) {
			renderTreeNode(b, a, slots, ch, chunk, si+1, indent)
		}
		return
	}
	full := chunk / sub
	rem := chunk - full*sub
	trips := full
	if rem > 0 {
		trips++
	}
	fmt.Fprintf(b, "%s`- %s %s x%d -> tile %d", indent, level, kw, trips, sub)
	if rem > 0 {
		fmt.Fprintf(b, " (last %d)", rem)
	}
	b.WriteByte('\n')

	childIndent := indent + "   "
	if trueAnywhereBelow(ch, sub, si+1) {
		if rem > 0 {
			fmt.Fprintf(b, "%s|- %dx full branch:\n", childIndent, full)
			renderTreeNode(b, a, slots, ch, sub, si+1, childIndent+"|  ")
			fmt.Fprintf(b, "%s`- rem branch (%d):\n", childIndent, rem)
			renderTreeNode(b, a, slots, ch, rem, si+1, childIndent+"   ")
		} else {
			renderTreeNode(b, a, slots, ch, sub, si+1, childIndent)
		}
	}
}

// trueAnywhereBelow reports whether any slot at or below si splits a chunk
// of the given size.
func trueAnywhereBelow(ch Chain, chunk, si int) bool {
	for i := si; i < len(ch.Cum)-1; i++ {
		if ch.Cum[i+1] < chunk && ch.Cum[i+1] < ch.Cum[i] {
			return true
		}
	}
	return false
}
