package mapping

import (
	"math/rand"
	"strings"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/workload"
)

func toyArch() *arch.Arch         { return arch.ToyGLB(6, 512) }
func toyWork() *workload.Workload { return workload.MustVector1D("toy", 100) }

func TestSlotsEyeriss(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	slots := Slots(a)
	// DRAM: T; GLB: T, SY(12), SX(14); PE: T. Five slots.
	if len(slots) != 5 {
		t.Fatalf("len(slots) = %d, want 5: %+v", len(slots), slots)
	}
	wantKinds := []SlotKind{Temporal, Temporal, SpatialY, SpatialX, Temporal}
	wantLevels := []int{0, 1, 1, 1, 2}
	for i, s := range slots {
		if s.Kind != wantKinds[i] || s.Level != wantLevels[i] || s.Index != i {
			t.Errorf("slot %d = %+v, want kind %v level %d", i, s, wantKinds[i], wantLevels[i])
		}
	}
	if slots[2].Fanout != 12 || slots[3].Fanout != 14 {
		t.Errorf("fanouts = %d, %d", slots[2].Fanout, slots[3].Fanout)
	}
	if !slots[3].Multicast {
		t.Error("Eyeriss array slot should multicast")
	}
	if FirstSlotOfLevel(slots, 1) != 1 || FirstSlotOfLevel(slots, 2) != 4 {
		t.Error("FirstSlotOfLevel wrong")
	}
}

func TestSlotsToy(t *testing.T) {
	slots := Slots(toyArch())
	// DRAM: T; GLB: T, SX(6). Three slots (GLB fanout Y=1 omitted).
	if len(slots) != 3 {
		t.Fatalf("len(slots) = %d: %+v", len(slots), slots)
	}
	if slots[2].Kind != SpatialX || slots[2].Fanout != 6 {
		t.Errorf("slot 2 = %+v", slots[2])
	}
}

// paperToyMapping builds the highlighted Fig. 5 mapping: DRAM temporal 1, GLB
// temporal 17, spatial 6 over 100 elements.
func paperToyMapping(w *workload.Workload, a *arch.Arch) *Mapping {
	m := Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	return m
}

func TestChainPaperToy(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a)
	chains, err := m.Chains(w, Slots(a))
	if err != nil {
		t.Fatal(err)
	}
	c := chains["X"]
	// Cum: slot 0 (DRAM T) covers min(100, 1*17*6)=100; slot 1 covers
	// min(100, 17*6)=100; slot 2 covers 6.
	if c.Cum[0] != 100 || c.Cum[1] != 100 || c.Cum[2] != 6 || c.Cum[3] != 1 {
		t.Fatalf("Cum = %v", c.Cum)
	}
	if c.Trips(0) != 1 {
		t.Errorf("DRAM trips = %d, want 1", c.Trips(0))
	}
	if c.Trips(1) != 17 {
		t.Errorf("GLB temporal trips = %d, want 17", c.Trips(1))
	}
	if c.Trips(2) != 6 {
		t.Errorf("spatial trips = %d, want 6", c.Trips(2))
	}
	// The last GLB iteration dispatches the remainder of 4 elements.
	if c.Remainder(1) != 4 {
		t.Errorf("GLB remainder = %d, want 4", c.Remainder(1))
	}
	if c.Perfect(1) {
		t.Error("GLB slot should be imperfect")
	}
	if !c.Perfect(2) {
		// 6 divides 6.
		t.Error("spatial slot should be perfect within its full tiles")
	}
}

func TestChainPerfectPFM(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 20, 5} // the PFM mapping of Fig. 4
	chains, err := m.Chains(w, Slots(a))
	if err != nil {
		t.Fatal(err)
	}
	c := chains["X"]
	if c.Trips(1) != 20 || c.Trips(2) != 5 {
		t.Errorf("trips = %d, %d", c.Trips(1), c.Trips(2))
	}
	if !c.Perfect(1) || c.Remainder(1) != 5 {
		t.Error("PFM chain should be perfect")
	}
}

func TestChainsRejectIncomplete(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 10, 6} // covers only 60 < 100
	if _, err := m.Chains(w, Slots(a)); err == nil {
		t.Error("incomplete chain accepted")
	}
	m.Factors["X"] = []int{1, 17} // wrong arity
	if _, err := m.Chains(w, Slots(a)); err == nil {
		t.Error("wrong arity accepted")
	}
	delete(m.Factors, "X")
	if _, err := m.Chains(w, Slots(a)); err == nil {
		t.Error("missing dim accepted")
	}
}

func TestChainsRejectOvershootBeyondCanonical(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := Uniform(w, a, 1)
	// After spatial 6 the residual is 17; factor 20 > 17 is non-canonical.
	m.Factors["X"] = []int{1, 20, 6}
	if _, err := m.Chains(w, Slots(a)); err == nil {
		t.Error("non-canonical overshoot accepted")
	}
}

func TestUniformMapping(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := Uniform(w, a, 0) // everything in DRAM temporal: the (100·1·1) mapping
	chains, err := m.Chains(w, Slots(a))
	if err != nil {
		t.Fatal(err)
	}
	if chains["X"].Trips(0) != 100 {
		t.Errorf("DRAM trips = %d", chains["X"].Trips(0))
	}
	if err := m.ValidatePerms(w, a); err != nil {
		t.Error(err)
	}
}

func TestValidatePermsRejections(t *testing.T) {
	w := workload.MustMatmul("mm", 4, 4, 4)
	a := toyArch()
	m := Uniform(w, a, 1)
	m.Perms = m.Perms[:1]
	if err := m.ValidatePerms(w, a); err == nil {
		t.Error("short perms accepted")
	}
	m = Uniform(w, a, 1)
	m.Perms[0] = []string{"M", "N", "N"}
	if err := m.ValidatePerms(w, a); err == nil {
		t.Error("duplicate perm accepted")
	}
	m = Uniform(w, a, 1)
	m.Perms[1] = []string{"M", "N"}
	if err := m.ValidatePerms(w, a); err == nil {
		t.Error("incomplete perm accepted")
	}
}

func TestKeptRoles(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	m := &Mapping{}
	dram := m.KeptRoles(a, 0)
	if len(dram) != 3 {
		t.Errorf("DRAM kept = %v", dram)
	}
	glb := m.KeptRoles(a, 1)
	if glb[workload.Weight] {
		t.Error("GLB should bypass weights")
	}
	if !glb[workload.Input] || !glb[workload.Output] {
		t.Error("GLB should keep I and O")
	}
	// Bypass override: drop inputs from the GLB too.
	m.Keep = []map[workload.Role]bool{nil, {workload.Output: true}, nil}
	glb = m.KeptRoles(a, 1)
	if glb[workload.Input] || !glb[workload.Output] {
		t.Errorf("override kept = %v", glb)
	}
	// Overrides can never add a role the architecture bypasses.
	m.Keep[1][workload.Weight] = true
	if m.KeptRoles(a, 1)[workload.Weight] {
		t.Error("override added weight to GLB despite arch bypass")
	}
}

func TestKeyDistinguishesMappings(t *testing.T) {
	w, a := toyWork(), toyArch()
	slots := Slots(a)
	m1 := paperToyMapping(w, a)
	m2 := Uniform(w, a, 1)
	m2.Factors["X"] = []int{1, 20, 5}
	if m1.Key(w, slots) == m2.Key(w, slots) {
		t.Error("different factor chains share a key")
	}
	m3 := m1.Clone()
	if m1.Key(w, slots) != m3.Key(w, slots) {
		t.Error("clone key differs")
	}
}

func TestKeyIgnoresInactivePermOrder(t *testing.T) {
	w := workload.MustMatmul("mm", 6, 1, 1)
	a := toyArch()
	slots := Slots(a)
	m1 := Uniform(w, a, 1)
	m2 := m1.Clone()
	// N and K have trips 1 everywhere; swapping them in a perm is a no-op.
	m2.Perms[1] = []string{"K", "M", "N"}
	if m1.Key(w, slots) != m2.Key(w, slots) {
		t.Errorf("keys differ on inactive perm reorder:\n%s\n%s", m1.Key(w, slots), m2.Key(w, slots))
	}
	// But reordering two active loops must matter.
	m3 := m1.Clone()
	m3.Factors["M"] = []int{1, 2, 3}
	m4 := m3.Clone()
	m4.Factors["N"] = m4.Factors["N"] // keep
	if m3.Key(w, slots) == "" {
		t.Error("empty key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a)
	m.Keep = []map[workload.Role]bool{nil, {workload.Input: true}, nil}
	c := m.Clone()
	c.Factors["X"][1] = 99
	c.Perms[0][0] = "Z"
	c.Keep[1][workload.Input] = false
	if m.Factors["X"][1] != 17 || m.Perms[0][0] != "X" || !m.Keep[1][workload.Input] {
		t.Error("Clone shares state with original")
	}
}

func TestRender(t *testing.T) {
	w, a := toyWork(), toyArch()
	m := paperToyMapping(w, a)
	s := m.Render(w, a)
	for _, frag := range []string{"--- DRAM ---", "--- GLB ---", "for x in [0:17)", "(last: 4)", "parFor x in [0:6)", "mac()"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q in:\n%s", frag, s)
		}
	}
	bad := Uniform(w, a, 1)
	bad.Factors["X"] = []int{1, 1, 1}
	if !strings.Contains(bad.Render(w, a), "invalid") {
		t.Error("Render of invalid mapping should say so")
	}
}

func TestNewChainClipping(t *testing.T) {
	c := NewChain(10, []int{2, 5, 1})
	if c.Cum[0] != 10 || c.Cum[1] != 5 || c.Cum[2] != 1 {
		t.Errorf("Cum = %v", c.Cum)
	}
	// Degenerate outer slot after clipping.
	c = NewChain(10, []int{1, 10, 1})
	if c.Trips(0) != 1 || c.Trips(1) != 10 {
		t.Errorf("trips = %d, %d", c.Trips(0), c.Trips(1))
	}
}

func TestChainInvariantsProperty(t *testing.T) {
	// Property: for random canonical chains, Cum is non-increasing, trips
	// are >= 1 and bounded by the factor, and remainders never exceed the
	// subtile size.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		bound := rng.Intn(400) + 1
		k := rng.Intn(4) + 2
		factors := make([]int, k)
		r := bound
		for i := k - 1; i >= 0; i-- {
			if i == 0 {
				factors[i] = r
				break
			}
			f := 1 + rng.Intn(r)
			factors[i] = f
			r = (r + f - 1) / f
		}
		c := NewChain(bound, factors)
		if c.Cum[0] != bound || c.Cum[k] != 1 {
			t.Fatalf("chain ends wrong: %v (bound %d)", c.Cum, bound)
		}
		for i := 0; i < k; i++ {
			if c.Cum[i+1] > c.Cum[i] {
				t.Fatalf("Cum increases at %d: %v", i, c.Cum)
			}
			tr := c.Trips(i)
			if tr < 1 || tr > factors[i] {
				t.Fatalf("trips %d out of [1, %d] at slot %d (%v)", tr, factors[i], i, c.Cum)
			}
			rem := c.Remainder(i)
			if rem < 1 || rem > c.Cum[i+1] {
				t.Fatalf("remainder %d out of (0, %d] at slot %d", rem, c.Cum[i+1], i)
			}
			// Coverage identity: (trips-1)*sub + rem == Cum[i].
			if (tr-1)*c.Cum[i+1]+rem != c.Cum[i] {
				t.Fatalf("coverage identity broken at %d: %v", i, c.Cum)
			}
		}
	}
}
