package workloads

import (
	"fmt"

	"ruby/internal/workload"
)

// Depthwise builds a depthwise convolution layer via the Einsum frontend:
// each output channel convolves only its own input channel, so the input is
// indexed by the output-channel dimension M and only R, S reduce.
func Depthwise(name string, m, pq, rs, stride int) Layer {
	expr := "O[n,m,p,q] += I[n,m,p+r,q+s] * W[m,r,s]"
	if stride > 1 {
		expr = fmt.Sprintf("O[n,m,p,q] += I[n,m,%dp+r,%dq+s] * W[m,r,s]", stride, stride)
	}
	w := workload.MustParseEinsum(name, expr, map[string]int{
		"N": 1, "M": m, "P": pq, "Q": pq, "R": rs, "S": rs,
	})
	return Layer{Name: name, Type: ConvOther, Repeat: 1, Work: w}
}

// MobileNetV2 returns the unique layers of MobileNetV2 [Sandler et al. 2018]
// — an extension suite whose expansion channel counts (96, 144, 192, 384,
// 576, 960) carry factors of 3 and rarely align with power-of-two or 14x12
// arrays, and whose depthwise layers have no channel reduction to
// parallelize over. Both properties make it a natural imperfect-
// factorization target beyond the paper's evaluation.
func MobileNetV2() []Layer {
	pw := func(name string, repeat, m, c, pq int) Layer {
		l := conv(name, Pointwise, repeat, m, c, pq, 1, 1)
		return l
	}
	dw := func(name string, repeat, m, pq, stride int) Layer {
		l := Depthwise(name, m, pq, 3, stride)
		l.Repeat = repeat
		return l
	}
	layers := []Layer{
		conv("mbv2_conv1", Conv3x3, 1, 32, 3, 112, 3, 2),

		dw("mbv2_b1_dw", 1, 32, 112, 1),
		pw("mbv2_b1_pj", 1, 16, 32, 112),

		pw("mbv2_b2_ex", 1, 96, 16, 112),
		dw("mbv2_b2_dw", 1, 96, 56, 2),
		pw("mbv2_b2_pj", 1, 24, 96, 56),
		pw("mbv2_b2r_ex", 1, 144, 24, 56),
		dw("mbv2_b2r_dw", 1, 144, 56, 1),
		pw("mbv2_b2r_pj", 1, 24, 144, 56),

		dw("mbv2_b3_dw", 1, 144, 28, 2),
		pw("mbv2_b3_pj", 1, 32, 144, 28),
		pw("mbv2_b3r_ex", 2, 192, 32, 28),
		dw("mbv2_b3r_dw", 2, 192, 28, 1),
		pw("mbv2_b3r_pj", 2, 32, 192, 28),

		dw("mbv2_b4_dw", 1, 192, 14, 2),
		pw("mbv2_b4_pj", 1, 64, 192, 14),
		pw("mbv2_b4r_ex", 3, 384, 64, 14),
		dw("mbv2_b4r_dw", 3, 384, 14, 1),
		pw("mbv2_b4r_pj", 3, 64, 384, 14),

		pw("mbv2_b5_ex", 3, 576, 96, 14),
		dw("mbv2_b5_dw", 2, 576, 14, 1),
		pw("mbv2_b5_pj", 2, 96, 576, 14),

		dw("mbv2_b6_dw", 1, 576, 7, 2),
		pw("mbv2_b6_pj", 1, 160, 576, 7),
		pw("mbv2_b6r_ex", 2, 960, 160, 7),
		dw("mbv2_b6r_dw", 2, 960, 7, 1),
		pw("mbv2_b6r_pj", 2, 160, 960, 7),

		pw("mbv2_b7_pj", 1, 320, 960, 7),
		pw("mbv2_head", 1, 1280, 320, 7),
	}
	fc, err := workload.Dense("mbv2_fc", 1000, 1280)
	if err != nil {
		panic(err)
	}
	return append(layers, Layer{Name: "mbv2_fc", Type: DenseFC, Repeat: 1, Work: fc})
}
