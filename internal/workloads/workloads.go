// Package workloads defines the benchmark layers the paper evaluates:
// ResNet-50 (Fig. 10, 12, 13a, 14a), AlexNet layer 2 (Fig. 9), a DeepBench
// selection spanning vision, speech, face-recognition and speaker-ID tasks
// (Fig. 11, 13b, 14b), and the Section III toy problems (Fig. 7, 8, Table I).
package workloads

import (
	"fmt"

	"ruby/internal/workload"
)

// LayerType classifies layers the way Fig. 10 groups them.
type LayerType string

const (
	Conv7x7   LayerType = "conv7x7"
	Conv3x3   LayerType = "conv3x3"
	Pointwise LayerType = "pointwise"
	DenseFC   LayerType = "dense"
	ConvOther LayerType = "conv"
	GEMM      LayerType = "gemm"
)

// Layer is one benchmark entry: a workload plus suite metadata.
type Layer struct {
	Name   string
	Type   LayerType
	Domain string // DeepBench domain ("vision", "speech", ...); empty for DNN suites
	Repeat int    // occurrences in the full network (>= 1)
	Work   *workload.Workload
}

func conv(name string, t LayerType, repeat, m, c, pq, rs, stride int) Layer {
	return Layer{
		Name: name, Type: t, Repeat: repeat,
		Work: workload.MustConv2D(workload.Conv2DParams{
			Name: name, N: 1, M: m, C: c, P: pq, Q: pq, R: rs, S: rs,
			StrideH: stride, StrideW: stride,
		}),
	}
}

// ResNet50 returns the unique layers of ResNet-50 [He et al. 2015] with
// repeat counts, batch size 1, as used throughout the paper's evaluation.
// Bottleneck blocks contribute 1x1 reduce, 3x3, and 1x1 expand layers;
// stage-entry blocks add strided projection shortcuts.
func ResNet50() []Layer {
	layers := []Layer{
		conv("conv1", Conv7x7, 1, 64, 3, 112, 7, 2),

		// Stage 2 (56x56).
		conv("res2a_branch1", Pointwise, 1, 256, 64, 56, 1, 1),
		conv("res2a_branch2a", Pointwise, 1, 64, 64, 56, 1, 1),
		conv("res2x_branch2b", Conv3x3, 3, 64, 64, 56, 3, 1),
		conv("res2x_branch2c", Pointwise, 3, 256, 64, 56, 1, 1),
		conv("res2b_branch2a", Pointwise, 2, 64, 256, 56, 1, 1),

		// Stage 3 (28x28).
		conv("res3a_branch1", Pointwise, 1, 512, 256, 28, 1, 2),
		conv("res3a_branch2a", Pointwise, 1, 128, 256, 28, 1, 2),
		conv("res3x_branch2b", Conv3x3, 4, 128, 128, 28, 3, 1),
		conv("res3x_branch2c", Pointwise, 4, 512, 128, 28, 1, 1),
		conv("res3b_branch2a", Pointwise, 3, 128, 512, 28, 1, 1),

		// Stage 4 (14x14).
		conv("res4a_branch1", Pointwise, 1, 1024, 512, 14, 1, 2),
		conv("res4a_branch2a", Pointwise, 1, 256, 512, 14, 1, 2),
		conv("res4x_branch2b", Conv3x3, 6, 256, 256, 14, 3, 1),
		conv("res4x_branch2c", Pointwise, 6, 1024, 256, 14, 1, 1),
		conv("res4b_branch2a", Pointwise, 5, 256, 1024, 14, 1, 1),

		// Stage 5 (7x7).
		conv("res5a_branch1", Pointwise, 1, 2048, 1024, 7, 1, 2),
		conv("res5a_branch2a", Pointwise, 1, 512, 1024, 7, 1, 2),
		conv("res5x_branch2b", Conv3x3, 3, 512, 512, 7, 3, 1),
		conv("res5x_branch2c", Pointwise, 3, 2048, 512, 7, 1, 1),
		conv("res5b_branch2a", Pointwise, 2, 512, 2048, 7, 1, 1),
	}
	fc, err := workload.Dense("fc1000", 1000, 2048)
	if err != nil {
		panic(err)
	}
	layers = append(layers, Layer{Name: "fc1000", Type: DenseFC, Repeat: 1, Work: fc})
	for i := range layers {
		if layers[i].Repeat == 0 {
			layers[i].Repeat = 1
		}
	}
	return layers
}

// AlexNetConv2 returns layer 2 of AlexNet with the shapes quoted in Section
// IV-B: per-group IFM 27x27x48, 5x5 filters, 96 output filters (grouped
// convolution), pad 2 so the OFM is 27x27.
func AlexNetConv2() *workload.Workload {
	return workload.MustConv2D(workload.Conv2DParams{
		Name: "alexnet_conv2", N: 1, M: 96, C: 48, P: 27, Q: 27, R: 5, S: 5,
	})
}

// DeepBench returns the paper's DeepBench selection: convolution and GEMM
// kernels from vision, speech recognition (DeepSpeech), face recognition and
// speaker identification, per the Baidu DeepBench suite. The diversity of
// tensor shapes — in particular the speech layers whose dimensions share no
// factors with a 14x12 array — is the point of the suite.
func DeepBench() []Layer {
	mk := func(name, domain string, t LayerType, w *workload.Workload) Layer {
		return Layer{Name: name, Domain: domain, Type: t, Repeat: 1, Work: w}
	}
	convP := func(name, domain string, m, c, p, q, r, s, sh, sw int) Layer {
		return mk(name, domain, ConvOther, workload.MustConv2D(workload.Conv2DParams{
			Name: name, N: 1, M: m, C: c, P: p, Q: q, R: r, S: s, StrideH: sh, StrideW: sw,
		}))
	}
	gemm := func(name, domain string, m, n, k int) Layer {
		return mk(name, domain, GEMM, workload.MustMatmul(name, m, n, k))
	}
	return []Layer{
		// Vision: ImageNet-derived shapes whose feature maps carry the
		// factor 7 that the 14x12 Eyeriss array was sized for.
		convP("vision_conv1_7x7", "vision", 64, 3, 112, 112, 7, 7, 2, 2),
		convP("vision_conv_3x3_56", "vision", 64, 64, 56, 56, 3, 3, 1, 1),
		convP("vision_conv_3x3_28", "vision", 128, 128, 28, 28, 3, 3, 1, 1),
		convP("vision_conv_3x3_14", "vision", 256, 256, 14, 14, 3, 3, 1, 1),
		convP("vision_conv_3x3_7", "vision", 512, 512, 7, 7, 3, 3, 1, 1),

		// Speech (DeepSpeech): layer 1 consumes a 341x79x32 spectrogram tile
		// with 5x10 filters (the example the paper quotes); layer 0 consumes
		// the raw 700x161 spectrogram with 5x20 filters, stride 2.
		convP("speech_ds_conv0", "speech", 32, 1, 348, 71, 5, 20, 2, 2),
		convP("speech_ds_conv1", "speech", 32, 32, 337, 70, 5, 10, 1, 1),

		// Face recognition (DeepFace-style locally-unshared stand-ins):
		// odd feature-map sizes (83, 41) misaligned with 14x12.
		convP("face_conv_9x9", "face", 32, 16, 83, 83, 9, 9, 1, 1),
		convP("face_conv_7x7", "face", 16, 32, 41, 41, 7, 7, 1, 1),

		// Speech-to-text and speaker-ID GEMMs from DeepBench's server set.
		gemm("speech_gemm_5124x700x2048", "speech", 5124, 700, 2048),
		gemm("speech_gemm_35x700x2048", "speech", 35, 700, 2048),
		gemm("speaker_gemm_3072x1500x1024", "speaker", 3072, 1500, 1024),
		gemm("speaker_gemm_512x1500x2816", "speaker", 512, 1500, 2816),
	}
}

// Fig7Matmul returns the Section III-A toy GEMM over two 100x100 tensors.
func Fig7Matmul() *workload.Workload {
	return workload.MustMatmul("fig7_matmul100", 100, 100, 100)
}

// Fig7Conv returns the Section III-A toy convolution: a 3x3x64 filter over a
// 28x28x64 image (valid padding, so the OFM is 26x26), 64 filters.
func Fig7Conv() *workload.Workload {
	return workload.MustConv2D(workload.Conv2DParams{
		Name: "fig7_conv", N: 1, M: 64, C: 64, P: 26, Q: 26, R: 3, S: 3,
	})
}

// Rank1 returns the single-dimension tensor distribution of Table I / Fig. 8.
func Rank1(d int) *workload.Workload {
	return workload.MustVector1D(fmt.Sprintf("rank1_%d", d), d)
}

// TotalMACs sums a suite's MAC counts weighted by layer repeats.
func TotalMACs(layers []Layer) uint64 {
	var total uint64
	for _, l := range layers {
		total += l.Work.MACs() * uint64(l.Repeat)
	}
	return total
}
