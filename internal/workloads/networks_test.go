package workloads

import (
	"testing"

	"ruby/internal/workload"
)

// Every built-in network must validate and bind all of its edges with the
// size rule intact.
func TestNetworksValidateAndBind(t *testing.T) {
	for name, net := range Networks() {
		if err := net.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bs, err := net.Bindings()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, b := range bs {
			for _, pr := range b.Pairs {
				bp := b.Prod.Work.Bound(pr.ProdDim)
				bc := b.Cons.Work.Bound(pr.ConsDim)
				if bp != pr.Stride*bc {
					t.Fatalf("%s: edge %s->%s: %s->%s: %d != %d x %d",
						name, b.Prod.Name, b.Cons.Name, pr.ProdDim, pr.ConsDim, bp, pr.Stride, bc)
				}
			}
		}
	}
}

func TestResNet50NetworkEdges(t *testing.T) {
	net := ResNet50Network()
	if len(net.Edges) != 11 {
		t.Fatalf("edges = %d, want 11", len(net.Edges))
	}
	// The stage transitions must bind with stride-2 spatial pairs.
	strided := 0
	bs, err := net.Bindings()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		for _, pr := range b.Pairs {
			if pr.Stride == 2 {
				strided++
			}
		}
	}
	if strided != 6 { // three stage transitions x (P, Q)
		t.Fatalf("stride-2 pairs = %d, want 6", strided)
	}
	// The graph must not connect the pooling-separated endpoints.
	if n := len(net.EdgesFrom("conv1")); n != 0 {
		t.Fatalf("conv1 has %d outgoing edges, want 0 (maxpool)", n)
	}
	if n := len(net.EdgesInto("fc1000")); n != 0 {
		t.Fatalf("fc1000 has %d incoming edges, want 0 (avgpool)", n)
	}
}

func TestDeepBenchNetworks(t *testing.T) {
	if n := len(DeepBenchNetwork().Edges); n != 0 {
		t.Fatalf("deepbench edges = %d, want 0", n)
	}
	st := DeepBenchStacks()
	if len(st.Edges) != 2 {
		t.Fatalf("stack edges = %d, want 2", len(st.Edges))
	}
	b, err := st.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Prod.Name != "speech_gemm_5124x700x2048" || b.Cons.Name != "speech_gemm2_5124x2048x700" {
		t.Fatalf("gemm stack endpoints %s->%s", b.Prod.Name, b.Cons.Name)
	}
}

// LayersOf(NetworkFromLayers(...)) must round-trip names, repeats, workloads
// and layer types for the real suites.
func TestLayersOfRoundTrip(t *testing.T) {
	for name, layers := range map[string][]Layer{
		"resnet50":  ResNet50(),
		"deepbench": DeepBench(),
		"vgg16":     VGG16(),
	} {
		got := LayersOf(NetworkFromLayers(name, layers))
		if len(got) != len(layers) {
			t.Fatalf("%s: %d layers, want %d", name, len(got), len(layers))
		}
		for i, l := range layers {
			g := got[i]
			if g.Name != l.Name || g.Repeat != l.Repeat || g.Work != l.Work {
				t.Fatalf("%s[%d]: got %+v, want %+v", name, i, g, l)
			}
			// DeepBench groups convs by domain (ConvOther), which shape
			// classification cannot recover; types must match elsewhere.
			if name != "deepbench" && g.Type != l.Type {
				t.Fatalf("%s[%d] %s: type %v, want %v", name, i, l.Name, g.Type, l.Type)
			}
		}
	}
}

func TestSuitesNetworksAgree(t *testing.T) {
	suites, nets := Suites(), Networks()
	if len(suites) != len(nets) {
		t.Fatalf("suites = %d entries, networks = %d", len(suites), len(nets))
	}
	for name, layers := range suites {
		net, ok := nets[name]
		if !ok {
			t.Fatalf("no network for suite %q", name)
		}
		if len(net.Nodes) != len(layers) {
			t.Fatalf("%s: %d nodes vs %d layers", name, len(net.Nodes), len(layers))
		}
		for i, l := range layers {
			if net.Nodes[i].Name != l.Name {
				t.Fatalf("%s[%d]: node %q vs layer %q", name, i, net.Nodes[i].Name, l.Name)
			}
			if net.Nodes[i].Repeats() != maxInt(l.Repeat, 1) {
				t.Fatalf("%s[%d]: repeat %d vs %d", name, i, net.Nodes[i].Repeats(), l.Repeat)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// The classifier must keep labelling stock builder shapes the way the layer
// tables do.
func TestClassify(t *testing.T) {
	if ty := classify(workload.MustMatmul("g", 8, 8, 8)); ty != GEMM {
		t.Fatalf("gemm classified %v", ty)
	}
	d, err := workload.Dense("d", 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ty := classify(d); ty != DenseFC {
		t.Fatalf("dense classified %v", ty)
	}
}
