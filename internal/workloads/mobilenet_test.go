package workloads

import (
	"context"

	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
)

func TestDepthwiseLayer(t *testing.T) {
	l := Depthwise("dw", 32, 14, 3, 1)
	if l.Work.MACs() != uint64(32*14*14*9) {
		t.Errorf("MACs = %d", l.Work.MACs())
	}
	in := l.Work.TensorByRole(0) // Input
	if !in.Relevant("M") {
		t.Error("depthwise input not indexed by M")
	}
	strided := Depthwise("dw2", 96, 56, 3, 2)
	// Input extent: 2*(56-1) + (3-1) + 1 = 113 per axis.
	if got := strided.Work.Size(strided.Work.Tensor("I")); got != int64(96*113*113) {
		t.Errorf("strided depthwise input size = %d, want %d", got, 96*113*113)
	}
}

func TestMobileNetV2Structure(t *testing.T) {
	layers := MobileNetV2()
	if len(layers) < 25 {
		t.Fatalf("layers = %d", len(layers))
	}
	names := map[string]bool{}
	var dws int
	for _, l := range layers {
		if names[l.Name] {
			t.Errorf("duplicate layer %q", l.Name)
		}
		names[l.Name] = true
		if err := l.Work.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if l.Work.Tensor("I") != nil && l.Work.Tensor("I").Relevant("M") && l.Work.Tensor("I").Relevant("R") {
			dws++
		}
	}
	if dws < 8 {
		t.Errorf("depthwise layers = %d, want >= 8", dws)
	}
	// MobileNetV2 performs ~0.3 GMACs at batch 1 (300M in the paper);
	// our unique-layer x repeat coverage should land in [0.2e9, 0.5e9].
	total := TotalMACs(layers)
	if total < 200_000_000 || total > 500_000_000 {
		t.Errorf("total MACs = %d, want ~0.3e9", total)
	}
}

// TestMobileNetDepthwiseMappable: a depthwise layer must be mappable on the
// Eyeriss-like baseline end to end, and Ruby-S must be able to parallelize
// its channel dimension despite 576 sharing no convenient factors with 14.
func TestMobileNetDepthwiseMappable(t *testing.T) {
	l := Depthwise("dw576", 576, 14, 3, 1)
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(l.Work, a)
	cons := mapspace.Constraints{
		SpatialX: []string{"Q", "M"},
		SpatialY: []string{"R", "S", "M"},
	}
	for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.RubyS} {
		sp := mapspace.New(l.Work, a, kind, cons)
		res := search.Random(context.Background(), sp, engine.New(ev), search.Options{Seed: 1, Threads: 4, MaxEvaluations: 15000})
		if res.Best == nil {
			t.Fatalf("%v: no valid mapping", kind)
		}
		t.Logf("%v: EDP %.3e util %.3f", kind, res.BestCost.EDP, res.BestCost.Utilization)
	}
}

func TestSuitesIncludesMobileNet(t *testing.T) {
	if len(Suites()["mobilenetv2"]) == 0 {
		t.Error("mobilenetv2 missing from Suites")
	}
}
