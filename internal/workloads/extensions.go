package workloads

import (
	"fmt"

	"ruby/internal/workload"
)

// VGG16 returns the unique convolution and dense layers of VGG-16 with
// repeat counts — an extension suite beyond the paper's evaluation. VGG's
// power-of-two channel counts divide 16x16-style arrays perfectly but share
// only small factors with the Eyeriss 14x12 grid (divisors of 512 capped at
// 14 stop at 8), so perfect factorization strands almost half the columns
// and Ruby-S wins large.
func VGG16() []Layer {
	layers := []Layer{
		conv("vgg_conv1_1", Conv3x3, 1, 64, 3, 224, 3, 1),
		conv("vgg_conv1_2", Conv3x3, 1, 64, 64, 224, 3, 1),
		conv("vgg_conv2_1", Conv3x3, 1, 128, 64, 112, 3, 1),
		conv("vgg_conv2_2", Conv3x3, 1, 128, 128, 112, 3, 1),
		conv("vgg_conv3_1", Conv3x3, 1, 256, 128, 56, 3, 1),
		conv("vgg_conv3_x", Conv3x3, 2, 256, 256, 56, 3, 1),
		conv("vgg_conv4_1", Conv3x3, 1, 512, 256, 28, 3, 1),
		conv("vgg_conv4_x", Conv3x3, 2, 512, 512, 28, 3, 1),
		conv("vgg_conv5_x", Conv3x3, 3, 512, 512, 14, 3, 1),
	}
	for _, fc := range []struct {
		name string
		m, c int
	}{
		{"vgg_fc6", 4096, 25088},
		{"vgg_fc7", 4096, 4096},
		{"vgg_fc8", 1000, 4096},
	} {
		w, err := workload.Dense(fc.name, fc.m, fc.c)
		if err != nil {
			panic(err)
		}
		layers = append(layers, Layer{Name: fc.name, Type: DenseFC, Repeat: 1, Work: w})
	}
	return layers
}

// TransformerEncoder returns the GEMM workloads of one Transformer encoder
// layer at the given sequence length and hidden size (BERT-base:
// TransformerEncoder(384, 768, 12)). Sequence lengths are rarely multiples
// of PE-array dimensions, making attention GEMMs a natural Ruby-S target.
func TransformerEncoder(seq, hidden, heads int) []Layer {
	if seq < 1 || hidden < 1 || heads < 1 || hidden%heads != 0 {
		panic(fmt.Sprintf("workloads: bad transformer shape seq=%d hidden=%d heads=%d", seq, hidden, heads))
	}
	headDim := hidden / heads
	gemm := func(name string, m, n, k, repeat int) Layer {
		return Layer{
			Name: name, Type: GEMM, Domain: "transformer", Repeat: repeat,
			Work: workload.MustMatmul(name, m, n, k),
		}
	}
	return []Layer{
		// Q, K, V projections: [seq, hidden] x [hidden, hidden].
		gemm(fmt.Sprintf("attn_qkv_s%d", seq), seq, hidden, hidden, 3),
		// Attention scores per head: [seq, headDim] x [headDim, seq].
		gemm(fmt.Sprintf("attn_scores_s%d", seq), seq, seq, headDim, heads),
		// Attention context per head: [seq, seq] x [seq, headDim].
		gemm(fmt.Sprintf("attn_context_s%d", seq), seq, headDim, seq, heads),
		// Output projection.
		gemm(fmt.Sprintf("attn_out_s%d", seq), seq, hidden, hidden, 1),
		// Feed-forward up/down (4x expansion).
		gemm(fmt.Sprintf("ffn_up_s%d", seq), seq, 4*hidden, hidden, 1),
		gemm(fmt.Sprintf("ffn_down_s%d", seq), seq, hidden, 4*hidden, 1),
	}
}

// Suites returns every built-in suite by name; the CLI and tests use it for
// discovery.
func Suites() map[string][]Layer {
	return map[string][]Layer{
		"resnet50":         ResNet50(),
		"deepbench":        DeepBench(),
		"deepbench-stacks": LayersOf(DeepBenchStacks()),
		"vgg16":            VGG16(),
		"transformer":      TransformerEncoder(384, 768, 12),
		"mobilenetv2":      MobileNetV2(),
	}
}
