package workloads

import (
	"testing"

	"ruby/internal/workload"
)

func TestResNet50Structure(t *testing.T) {
	layers := ResNet50()
	if len(layers) != 22 {
		t.Errorf("unique layers = %d, want 22", len(layers))
	}
	names := map[string]bool{}
	var blocks int
	for _, l := range layers {
		if names[l.Name] {
			t.Errorf("duplicate layer %q", l.Name)
		}
		names[l.Name] = true
		if l.Repeat < 1 {
			t.Errorf("%s: repeat %d", l.Name, l.Repeat)
		}
		if err := l.Work.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if l.Type == Conv3x3 {
			blocks += l.Repeat
		}
	}
	// ResNet-50 has 16 bottleneck blocks, each with one 3x3 layer.
	if blocks != 16 {
		t.Errorf("3x3 layers (weighted) = %d, want 16", blocks)
	}
}

func TestResNet50MACs(t *testing.T) {
	// ResNet-50 at batch 1 performs ~4.1 GMACs; the conv/fc layers here
	// should land in [3.5e9, 4.5e9].
	total := TotalMACs(ResNet50())
	if total < 3_500_000_000 || total > 4_500_000_000 {
		t.Errorf("total MACs = %d, want ~4.1e9", total)
	}
}

func TestResNet50LayerShapes(t *testing.T) {
	layers := ResNet50()
	byName := map[string]Layer{}
	for _, l := range layers {
		byName[l.Name] = l
	}
	c1 := byName["conv1"].Work
	if c1.Bound("M") != 64 || c1.Bound("P") != 112 || c1.Bound("R") != 7 {
		t.Error("conv1 shape wrong")
	}
	b := byName["res4x_branch2b"]
	if b.Work.Bound("C") != 256 || b.Work.Bound("P") != 14 || b.Repeat != 6 {
		t.Error("res4 3x3 shape wrong")
	}
	fc := byName["fc1000"]
	if fc.Type != DenseFC || fc.Work.MACs() != 1000*2048 {
		t.Error("fc1000 wrong")
	}
}

func TestAlexNetConv2(t *testing.T) {
	w := AlexNetConv2()
	if w.Bound("Q") != 27 || w.Bound("C") != 48 || w.Bound("M") != 96 || w.Bound("R") != 5 {
		t.Error("AlexNet conv2 shape wrong")
	}
	// The paper's key property: Q=27 shares no factor with 14.
	if 27%2 == 0 || 14%3 == 0 {
		t.Error("expected misalignment between Q=27 and array width 14")
	}
}

func TestDeepBenchSuite(t *testing.T) {
	layers := DeepBench()
	if len(layers) < 10 {
		t.Errorf("suite size = %d, want >= 10", len(layers))
	}
	domains := map[string]int{}
	for _, l := range layers {
		domains[l.Domain]++
		if err := l.Work.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
	for _, d := range []string{"vision", "speech", "face", "speaker"} {
		if domains[d] == 0 {
			t.Errorf("domain %q missing", d)
		}
	}
}

func TestDeepBenchSpeechShape(t *testing.T) {
	// The DeepSpeech layer the paper quotes: IFM 341x79x32, filter 5x10x32.
	var ds Layer
	for _, l := range DeepBench() {
		if l.Name == "speech_ds_conv1" {
			ds = l
		}
	}
	if ds.Work == nil {
		t.Fatal("speech_ds_conv1 missing")
	}
	if ds.Work.Bound("C") != 32 || ds.Work.Bound("R") != 5 || ds.Work.Bound("S") != 10 {
		t.Error("filter shape wrong")
	}
	in := ds.Work.Tensor("I")
	vol := in.TileVolume(map[string]int{
		"P": ds.Work.Bound("P"), "Q": ds.Work.Bound("Q"),
		"R": 5, "S": 10, "C": 32,
	})
	// IFM 341 x 79 x 32 = 862,048 words.
	if vol != 341*79*32 {
		t.Errorf("IFM volume = %d, want %d", vol, 341*79*32)
	}
}

func TestToys(t *testing.T) {
	mm := Fig7Matmul()
	if mm.Bound("M") != 100 || mm.Bound("K") != 100 {
		t.Error("Fig7Matmul shape wrong")
	}
	cv := Fig7Conv()
	if cv.Bound("C") != 64 || cv.Bound("P") != 26 {
		t.Error("Fig7Conv shape wrong")
	}
	r := Rank1(127)
	if r.MACs() != 127 {
		t.Error("Rank1 wrong")
	}
}

func TestTotalMACsWeighting(t *testing.T) {
	w := workload.MustVector1D("x", 10)
	layers := []Layer{{Name: "a", Repeat: 3, Work: w}, {Name: "b", Repeat: 1, Work: w}}
	if got := TotalMACs(layers); got != 40 {
		t.Errorf("TotalMACs = %d, want 40", got)
	}
}
