package workloads

import "testing"

func TestVGG16(t *testing.T) {
	layers := VGG16()
	var convs, fcs, weighted int
	for _, l := range layers {
		if err := l.Work.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		switch l.Type {
		case Conv3x3:
			convs++
			weighted += l.Repeat
		case DenseFC:
			fcs++
		}
	}
	if weighted != 13 {
		t.Errorf("weighted conv layers = %d, want 13", weighted)
	}
	if fcs != 3 {
		t.Errorf("fc layers = %d, want 3", fcs)
	}
	// VGG-16 performs ~15.5 GMACs at batch 1.
	total := TotalMACs(layers)
	if total < 15_000_000_000 || total > 16_000_000_000 {
		t.Errorf("total MACs = %d, want ~15.5e9", total)
	}
}

func TestTransformerEncoder(t *testing.T) {
	layers := TransformerEncoder(384, 768, 12)
	if len(layers) != 6 {
		t.Fatalf("layers = %d", len(layers))
	}
	var scores Layer
	for _, l := range layers {
		if err := l.Work.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if l.Name == "attn_scores_s384" {
			scores = l
		}
	}
	if scores.Work == nil {
		t.Fatal("scores GEMM missing")
	}
	// Per-head scores: [384 x 64] x [64 x 384], repeated 12x.
	if scores.Work.MACs() != 384*384*64 || scores.Repeat != 12 {
		t.Errorf("scores = %d MACs x%d", scores.Work.MACs(), scores.Repeat)
	}
	// BERT-base encoder layer: ~1.8 GMACs per layer at seq 384... spot check
	// the order of magnitude.
	total := TotalMACs(layers)
	if total < 1_000_000_000 || total > 4_000_000_000 {
		t.Errorf("encoder MACs = %d, want O(2e9)", total)
	}
}

func TestTransformerEncoderPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TransformerEncoder(384, 768, 7) // 768 % 7 != 0
}

func TestSuites(t *testing.T) {
	s := Suites()
	for _, name := range []string{"resnet50", "deepbench", "vgg16", "transformer"} {
		if len(s[name]) == 0 {
			t.Errorf("suite %q empty", name)
		}
	}
}
