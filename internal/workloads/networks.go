package workloads

import "ruby/internal/workload"

// This file hosts the workload.Network constructors: the suite layer tables
// of workloads.go lifted into producer/consumer graphs. The []Layer entry
// points remain as thin wrappers (deprecated) so existing callers keep
// compiling; new code should take a *workload.Network and fall back to
// per-layer mapping when the graph is edge-free.

// NetworkFromLayers wraps a layer list in an edge-free Network — the
// degenerate graph that per-layer suite runs operate on.
func NetworkFromLayers(name string, layers []Layer) *workload.Network {
	nodes := make([]workload.Node, len(layers))
	for i, l := range layers {
		nodes[i] = workload.Node{Name: l.Name, Repeat: l.Repeat, Work: l.Work}
	}
	return workload.MustNetwork(name, nodes, nil)
}

// LayersOf flattens a Network back into the suite layer list, classifying
// each node's layer type from its workload shape (the DeepBench domain tags
// are not recoverable and stay empty).
func LayersOf(net *workload.Network) []Layer {
	out := make([]Layer, len(net.Nodes))
	for i := range net.Nodes {
		nd := &net.Nodes[i]
		out[i] = Layer{
			Name: nd.Name, Type: classify(nd.Work), Repeat: nd.Repeats(), Work: nd.Work,
		}
	}
	return out
}

// classify recovers the Fig. 10 layer grouping from a workload's shape.
func classify(w *workload.Workload) LayerType {
	bound := func(d string) int {
		if w.DimID(d) < 0 {
			return 0
		}
		return w.Bound(d)
	}
	if r, s := bound("R"), bound("S"); r > 0 && s > 0 {
		switch {
		case r == 7 && s == 7:
			return Conv7x7
		case r == 3 && s == 3:
			return Conv3x3
		case r == 1 && s == 1:
			return Pointwise
		default:
			return ConvOther
		}
	}
	if bound("K") > 0 {
		if bound("N") == 1 {
			return DenseFC
		}
		return GEMM
	}
	return ConvOther
}

// convChain builds the standard convolution-stack correspondence: the
// producer's output channels become the consumer's input channels, with
// batch and feature-map dimensions carried through (the consumer's spatial
// coordinate strides absorb stage-entry downsampling).
func convChain(from, to string) workload.Edge {
	return workload.Edge{
		From: from, To: to,
		Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"},
	}
}

// gemmChain builds the back-to-back GEMM correspondence: Z1[M][N] feeds
// A2[M][K].
func gemmChain(from, to string) workload.Edge {
	return workload.Edge{From: from, To: to, Dims: map[string]string{"M": "M", "N": "K"}}
}

// ResNet50Network returns ResNet-50 as a workload graph: the layer table of
// ResNet50 plus the bottleneck-chain edges the representative layers admit —
// the 1x1-reduce → 3x3 → 1x1-expand chain of each stage and the strided
// stage-transition edges (a 56x56x256 stage-2 output feeding the stride-2
// stage-3 reduce, and so on down the pyramid). conv1 and fc1000 stay
// unconnected: max/average pooling sits between them and their neighbors,
// which the edge model does not express.
func ResNet50Network() *workload.Network {
	net := NetworkFromLayers("resnet50", ResNet50())
	net.Edges = []workload.Edge{
		// Stage 2 bottleneck chain.
		convChain("res2a_branch2a", "res2x_branch2b"),
		convChain("res2x_branch2b", "res2x_branch2c"),
		// Stage transitions: the expand output feeds the next stage's
		// stride-2 reduce (56 = 2x28, 28 = 2x14, 14 = 2x7).
		convChain("res2x_branch2c", "res3a_branch2a"),
		convChain("res3a_branch2a", "res3x_branch2b"),
		convChain("res3x_branch2b", "res3x_branch2c"),
		convChain("res3x_branch2c", "res4a_branch2a"),
		convChain("res4a_branch2a", "res4x_branch2b"),
		convChain("res4x_branch2b", "res4x_branch2c"),
		convChain("res4x_branch2c", "res5a_branch2a"),
		convChain("res5a_branch2a", "res5x_branch2b"),
		convChain("res5x_branch2b", "res5x_branch2c"),
	}
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}

// DeepBenchNetwork returns the DeepBench selection as an edge-free network:
// its kernels are drawn from unrelated models, so no output feeds another
// entry's input. Per-layer mapping over it reproduces DeepBench exactly.
func DeepBenchNetwork() *workload.Network {
	return NetworkFromLayers("deepbench", DeepBench())
}

// DeepBenchStacks returns back-to-back stacks built from DeepBench shapes —
// the fused-mapping counterpart of the per-kernel suite. The speech stack
// chains the DeepSpeech output-projection GEMM into a same-width second
// projection (M→M, N→K); the vision stack chains two 3x3x128 28x28 layers
// (M→C). Both intermediates are far larger than any on-chip buffer, which is
// what makes eliding their DRAM round-trip worthwhile.
func DeepBenchStacks() *workload.Network {
	gemm1 := workload.MustMatmul("speech_gemm_5124x700x2048", 5124, 700, 2048)
	gemm2 := workload.MustMatmul("speech_gemm2_5124x2048x700", 5124, 2048, 700)
	conv1 := workload.MustConv2D(workload.Conv2DParams{
		Name: "vision_stack_3x3_28a", N: 1, M: 128, C: 128, P: 28, Q: 28, R: 3, S: 3})
	conv2 := workload.MustConv2D(workload.Conv2DParams{
		Name: "vision_stack_3x3_28b", N: 1, M: 128, C: 128, P: 28, Q: 28, R: 3, S: 3})
	return workload.MustNetwork("deepbench-stacks",
		[]workload.Node{
			{Name: "speech_gemm_5124x700x2048", Work: gemm1},
			{Name: "speech_gemm2_5124x2048x700", Work: gemm2},
			{Name: "vision_stack_3x3_28a", Work: conv1},
			{Name: "vision_stack_3x3_28b", Work: conv2},
		},
		[]workload.Edge{
			gemmChain("speech_gemm_5124x700x2048", "speech_gemm2_5124x2048x700"),
			convChain("vision_stack_3x3_28a", "vision_stack_3x3_28b"),
		})
}

// Networks returns every built-in suite as a workload graph; graphs without
// fusable structure are edge-free. The CLI and server use it for discovery,
// mirroring Suites.
func Networks() map[string]*workload.Network {
	return map[string]*workload.Network{
		"resnet50":         ResNet50Network(),
		"deepbench":        DeepBenchNetwork(),
		"deepbench-stacks": DeepBenchStacks(),
		"vgg16":            VGG16Network(),
		"transformer":      NetworkFromLayers("transformer", TransformerEncoder(384, 768, 12)),
		"mobilenetv2":      NetworkFromLayers("mobilenetv2", MobileNetV2()),
	}
}

// VGG16Network returns VGG-16 as a workload graph with the back-to-back
// same-resolution 3x3 chains inside each block (pooling between blocks keeps
// the blocks themselves unconnected).
func VGG16Network() *workload.Network {
	net := NetworkFromLayers("vgg16", VGG16())
	net.Edges = []workload.Edge{
		convChain("vgg_conv1_1", "vgg_conv1_2"),
		convChain("vgg_conv2_1", "vgg_conv2_2"),
		convChain("vgg_conv3_1", "vgg_conv3_x"),
		convChain("vgg_conv4_1", "vgg_conv4_x"),
	}
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}
