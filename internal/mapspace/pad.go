package mapspace

import (
	"fmt"

	"ruby/internal/workload"
)

// PadDim returns bound rounded up to the nearest positive multiple of axis —
// the padding strategy of Section III-B ("pads the tensor up to the nearest
// number divisible by 16").
func PadDim(bound, axis int) int {
	if axis < 1 {
		panic(fmt.Sprintf("mapspace: PadDim axis %d", axis))
	}
	return ((bound + axis - 1) / axis) * axis
}

// PadWorkload returns a copy of w with each dimension in axes padded up to
// the nearest multiple of its axis value. The padded iteration space performs
// ineffectual work on the zero-filled region — the model charges its MACs and
// memory traffic in full, matching the paper's no-gating assumption.
func PadWorkload(w *workload.Workload, axes map[string]int) (*workload.Workload, error) {
	newBounds := make(map[string]int, len(axes))
	for d, axis := range axes {
		newBounds[d] = PadDim(w.Bound(d), axis)
	}
	p, err := w.Scale(newBounds)
	if err != nil {
		return nil, err
	}
	p.Name = w.Name + "/padded"
	return p, nil
}

// PaddedVariants returns the candidate padded workloads the padding baseline
// chooses among: padding the X-axis-eligible dimensions to multiples of
// fanoutX, the Y-axis-eligible ones to multiples of fanoutY, and both. The
// original workload is always included (padding is never forced), and
// variants identical to the original are dropped. Dimensions already
// divisible by their axis are left untouched.
func PaddedVariants(w *workload.Workload, cons Constraints, fanoutX, fanoutY int) []*workload.Workload {
	dimAxes := func(list []string, axis int) map[string]int {
		out := make(map[string]int)
		if axis <= 1 {
			return out
		}
		dims := list
		if dims == nil {
			dims = w.DimNames()
		}
		for _, d := range dims {
			if w.Bound(d)%axis != 0 {
				out[d] = axis
			}
		}
		return out
	}
	xPads := dimAxes(cons.SpatialX, fanoutX)
	yPads := dimAxes(cons.SpatialY, fanoutY)

	variants := []*workload.Workload{w}
	add := func(axes map[string]int) {
		if len(axes) == 0 {
			return
		}
		p, err := PadWorkload(w, axes)
		if err != nil {
			return
		}
		for _, v := range variants {
			if sameBounds(v, p) {
				return
			}
		}
		variants = append(variants, p)
	}
	add(xPads)
	add(yPads)
	both := make(map[string]int, len(xPads)+len(yPads))
	for d, a := range xPads {
		both[d] = a
	}
	for d, a := range yPads {
		// A dim eligible on both axes pads to the larger one.
		if b, ok := both[d]; !ok || a > b {
			both[d] = a
		}
	}
	add(both)
	return variants
}

func sameBounds(a, b *workload.Workload) bool {
	for _, d := range a.Dims {
		if b.Bound(d.Name) != d.Bound {
			return false
		}
	}
	return true
}
