package mapspace

import (
	"math/big"
	"testing"

	"ruby/internal/workload"
)

func TestTotalSizeUpperBound(t *testing.T) {
	s := toySpace(PFM) // FixedPerms: bound == chain count
	want := new(big.Int).SetUint64(s.TotalChainCount())
	if got := s.TotalSizeUpperBound(); got.Cmp(want) != 0 {
		t.Errorf("fixed perms bound = %v, want %v", got, want)
	}
	// With free perms on a 1-dim workload, 1! = 1 per level: unchanged.
	free := New(s.Work, s.Arch, PFM, Constraints{})
	if got := free.TotalSizeUpperBound(); got.Cmp(want) != 0 {
		t.Errorf("1-dim perm bound = %v, want %v", got, want)
	}
	// A 3-dim workload multiplies by (3!)^levels.
	mm := workload.MustMatmul("mm", 4, 4, 4)
	sp := New(mm, s.Arch, PFM, Constraints{})
	chains := new(big.Int).SetUint64(sp.TotalChainCount())
	perms := big.NewInt(6 * 6) // 2 levels
	want = new(big.Int).Mul(chains, perms)
	if got := sp.TotalSizeUpperBound(); got.Cmp(want) != 0 {
		t.Errorf("3-dim bound = %v, want %v", got, want)
	}
}
