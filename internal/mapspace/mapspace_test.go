package mapspace

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/mapping"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func toySpace(kind Kind) *Space {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return New(w, a, kind, Constraints{FixedPerms: true})
}

func TestKindString(t *testing.T) {
	if PFM.String() != "PFM" || RubyS.String() != "Ruby-S" {
		t.Error("kind names wrong")
	}
}

func TestChainSlotKinds(t *testing.T) {
	cases := []struct {
		kind                Kind
		spatialImp, tempImp bool
	}{
		{PFM, false, false},
		{Ruby, true, true},
		{RubyS, true, false},
		{RubyT, false, true},
	}
	for _, c := range cases {
		s := toySpace(c.kind)
		// Slots for ToyGLB: T(DRAM), T(GLB), SX(GLB). chainSlots is
		// innermost-first: [SX, T(GLB), T(DRAM)].
		cs := s.chainSlots("X")
		if len(cs) != 3 {
			t.Fatalf("%v: %d chain slots", c.kind, len(cs))
		}
		if got := cs[0].Kind == factor.Imperfect; got != c.spatialImp {
			t.Errorf("%v: spatial imperfect = %v, want %v", c.kind, got, c.spatialImp)
		}
		if got := cs[1].Kind == factor.Imperfect; got != c.tempImp {
			t.Errorf("%v: temporal imperfect = %v, want %v", c.kind, got, c.tempImp)
		}
		if cs[0].Max != 6 {
			t.Errorf("%v: spatial cap = %d, want 6", c.kind, cs[0].Max)
		}
	}
}

func TestChainCountOrdering(t *testing.T) {
	// For the paper's toy problem the mapspaces nest: PFM ⊂ Ruby-S ⊂ Ruby
	// and PFM ⊂ Ruby-T ⊂ Ruby.
	pfm := toySpace(PFM).ChainCount("X")
	rs := toySpace(RubyS).ChainCount("X")
	rt := toySpace(RubyT).ChainCount("X")
	ruby := toySpace(Ruby).ChainCount("X")
	if !(pfm < rs && rs < ruby) {
		t.Errorf("want PFM(%d) < Ruby-S(%d) < Ruby(%d)", pfm, rs, ruby)
	}
	if !(pfm < rt && rt < ruby) {
		t.Errorf("want PFM(%d) < Ruby-T(%d) < Ruby(%d)", pfm, rt, ruby)
	}
	// Ruby-T blows up much faster than Ruby-S on a capped spatial slot
	// (Table I's central observation).
	if rs >= rt {
		t.Errorf("Ruby-S (%d) should stay below Ruby-T (%d) with a fanout cap", rs, rt)
	}
}

func TestTotalChainCount(t *testing.T) {
	w := workload.MustMatmul("mm", 4, 4, 4)
	a := arch.ToyGLB(6, 512)
	s := New(w, a, PFM, Constraints{})
	want := s.ChainCount("M") * s.ChainCount("N") * s.ChainCount("K")
	if got := s.TotalChainCount(); got != want {
		t.Errorf("TotalChainCount = %d, want %d", got, want)
	}
}

func TestSampleStructurallyValid(t *testing.T) {
	w := workload.MustMatmul("mm", 100, 100, 1)
	a := arch.ToyGLB(16, 2048)
	e := nest.MustEvaluator(w, a)
	for _, kind := range Kinds {
		s := New(w, a, kind, Constraints{})
		rng := rand.New(rand.NewSource(1))
		valid := 0
		for i := 0; i < 500; i++ {
			m := s.Sample(rng)
			if _, err := m.Chains(w, s.Slots()); err != nil {
				t.Fatalf("%v: sample %d structurally invalid: %v", kind, i, err)
			}
			if err := m.ValidatePerms(w, a); err != nil {
				t.Fatalf("%v: sample %d perms invalid: %v", kind, i, err)
			}
			if c := e.Evaluate(m); c.Valid {
				valid++
			}
		}
		if valid < 100 {
			t.Errorf("%v: only %d/500 samples valid", kind, valid)
		}
	}
}

func TestSamplePFMFactorsDivide(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	s := New(w, a, PFM, Constraints{FixedPerms: true})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		m := s.Sample(rng)
		prod := 1
		for _, f := range m.Factors["X"] {
			prod *= f
		}
		if prod != 100 {
			t.Fatalf("PFM sample product = %d, want exactly 100 (factors %v)", prod, m.Factors["X"])
		}
	}
}

func TestSampleRubySSpatialCanExceedDivisors(t *testing.T) {
	// On D=100 with 6 PEs, PFM can use at most 5 PEs spatially; Ruby-S
	// should find spatial factor 6 within a few hundred samples.
	s := toySpace(RubyS)
	rng := rand.New(rand.NewSource(3))
	found := false
	for i := 0; i < 500 && !found; i++ {
		m := s.Sample(rng)
		if m.Factors["X"][2] == 6 {
			found = true
		}
	}
	if !found {
		t.Error("Ruby-S never sampled the spatial factor 6")
	}
	// And Ruby-S temporal slots stay divisor-constrained: with spatial 6 the
	// residual is 17, so the GLB temporal factor must be 1 or 17.
	for i := 0; i < 500; i++ {
		m := s.Sample(rng)
		if m.Factors["X"][2] == 6 {
			if f := m.Factors["X"][1]; f != 1 && f != 17 {
				t.Fatalf("Ruby-S temporal factor %d not a divisor of residual 17", f)
			}
		}
	}
}

func TestSampleRespectsSpatialConstraint(t *testing.T) {
	w := workload.MustMatmul("mm", 32, 32, 32)
	a := arch.EyerissLike(14, 12, 128)
	cons := Constraints{SpatialX: []string{"M"}, SpatialY: []string{"K"}}
	s := New(w, a, RubyS, cons)
	rng := rand.New(rand.NewSource(4))
	slots := s.Slots()
	var xIdx, yIdx int
	for _, sl := range slots {
		if sl.Kind == mapping.SpatialX {
			xIdx = sl.Index
		}
		if sl.Kind == mapping.SpatialY {
			yIdx = sl.Index
		}
	}
	for i := 0; i < 300; i++ {
		m := s.Sample(rng)
		if m.Factors["N"][xIdx] != 1 || m.Factors["N"][yIdx] != 1 {
			t.Fatal("N mapped spatially despite constraint")
		}
		if m.Factors["K"][xIdx] != 1 {
			t.Fatal("K mapped on X despite constraint")
		}
		if m.Factors["M"][yIdx] != 1 {
			t.Fatal("M mapped on Y despite constraint")
		}
	}
}

func TestSampleFanoutBudgetMostlyHolds(t *testing.T) {
	// Joint spatial usage respects the budget at sampling time.
	w := workload.MustMatmul("mm", 64, 64, 64)
	a := arch.EyerissLike(14, 12, 1024)
	s := New(w, a, RubyS, Constraints{})
	rng := rand.New(rand.NewSource(5))
	slots := s.Slots()
	for i := 0; i < 300; i++ {
		m := s.Sample(rng)
		chains, err := m.Chains(w, slots)
		if err != nil {
			t.Fatal(err)
		}
		for _, sl := range slots {
			if !sl.Spatial() {
				continue
			}
			used := 1
			for _, d := range w.DimNames() {
				used *= chains[d].Trips(sl.Index)
			}
			if used > sl.Fanout {
				t.Fatalf("sample %d exceeds fanout at slot %d: %d > %d", i, sl.Index, used, sl.Fanout)
			}
		}
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	for _, kind := range Kinds {
		s := toySpace(kind)
		want := s.TotalChainCount()
		var got uint64
		s.Enumerate(func(m *mapping.Mapping) bool {
			if _, err := m.Chains(s.Work, s.Slots()); err != nil {
				t.Fatalf("%v: enumerated invalid mapping: %v", kind, err)
			}
			got++
			return true
		})
		if got != want {
			t.Errorf("%v: enumerated %d, counted %d", kind, got, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := toySpace(Ruby)
	n := 0
	s.Enumerate(func(*mapping.Mapping) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d", n)
	}
}

func TestEnumerateMultiDim(t *testing.T) {
	w := workload.MustMatmul("mm", 4, 3, 2)
	a := arch.ToyGLB(4, 512)
	s := New(w, a, PFM, Constraints{})
	want := s.TotalChainCount()
	var got uint64
	seen := map[string]bool{}
	s.Enumerate(func(m *mapping.Mapping) bool {
		k := m.Key(w, s.Slots())
		if seen[k] {
			t.Fatalf("duplicate mapping %s", k)
		}
		seen[k] = true
		got++
		return true
	})
	if got != want {
		t.Errorf("enumerated %d, counted %d", got, want)
	}
}

func TestPadDim(t *testing.T) {
	cases := []struct{ bound, axis, want int }{
		{127, 16, 128}, {128, 16, 128}, {113, 16, 128}, {5, 16, 16}, {100, 6, 102},
	}
	for _, c := range cases {
		if got := PadDim(c.bound, c.axis); got != c.want {
			t.Errorf("PadDim(%d,%d) = %d, want %d", c.bound, c.axis, got, c.want)
		}
	}
}

func TestPadWorkload(t *testing.T) {
	w := workload.MustVector1D("toy", 127)
	p, err := PadWorkload(w, map[string]int{"X": 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound("X") != 128 {
		t.Errorf("padded bound = %d", p.Bound("X"))
	}
	if w.Bound("X") != 127 {
		t.Error("original mutated")
	}
	// Ineffectual work is charged: more MACs than the real workload.
	if p.MACs() <= w.MACs() {
		t.Error("padded workload should cost more MACs")
	}
}

func TestPaddedVariants(t *testing.T) {
	w := workload.MustMatmul("mm", 100, 50, 64)
	cons := Constraints{SpatialX: []string{"M"}, SpatialY: []string{"N"}}
	vs := PaddedVariants(w, cons, 16, 12)
	if len(vs) < 2 {
		t.Fatalf("variants = %d, want >= 2", len(vs))
	}
	if vs[0] != w {
		t.Error("original not first")
	}
	foundM := false
	for _, v := range vs[1:] {
		if v.Bound("M") == 112 {
			foundM = true
		}
		if v.Bound("K") != 64 {
			t.Error("non-spatial dim padded")
		}
	}
	if !foundM {
		t.Error("no variant padded M to 112")
	}
	// Already-aligned dims produce no variants.
	aligned := workload.MustMatmul("mm2", 64, 48, 64)
	if got := PaddedVariants(aligned, cons, 16, 12); len(got) != 1 {
		t.Errorf("aligned workload variants = %d, want 1", len(got))
	}
}

func TestSystolicConstraints(t *testing.T) {
	mm := workload.MustMatmul("mm", 32, 32, 32)
	cons := SystolicDataflow(mm)
	if len(cons.SpatialY) != 1 || cons.SpatialY[0] != "K" {
		t.Errorf("systolic GEMM Y = %v, want [K]", cons.SpatialY)
	}
	cv := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 4, C: 4, P: 4, Q: 4, R: 3, S: 3})
	ccons := SystolicDataflow(cv)
	if ccons.SpatialX[0] != "M" {
		t.Errorf("systolic conv X = %v", ccons.SpatialX)
	}
}

func TestSystolicMappableOnTPULike(t *testing.T) {
	w := workload.MustMatmul("mm", 100, 64, 100)
	a := arch.TPULike(16, 16, 96)
	ev := nest.MustEvaluator(w, a)
	for _, kind := range []Kind{PFM, RubyS} {
		sp := New(w, a, kind, SystolicDataflow(w))
		rng := rand.New(rand.NewSource(6))
		found := false
		for i := 0; i < 4000 && !found; i++ {
			if c := ev.Evaluate(sp.Sample(rng)); c.Valid {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: no valid mapping sampled on TPU-like", kind)
		}
	}
}

func TestRequireSpatialEnforced(t *testing.T) {
	// AlexNet-conv2 shape on the Eyeriss baseline with strict row-stationary
	// constraints: every sampled mapping must give Q a spatial X factor and
	// R a spatial Y factor.
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 96, C: 48, P: 27, Q: 27, R: 5, S: 5})
	a := arch.EyerissLike(14, 12, 128)
	cons := EyerissStrictRowStationary(w)
	slots := mapping.Slots(a)
	var yIdx, xIdx int
	for _, sl := range slots {
		if sl.Kind == mapping.SpatialY {
			yIdx = sl.Index
		}
		if sl.Kind == mapping.SpatialX {
			xIdx = sl.Index
		}
	}
	for _, kind := range []Kind{PFM, RubyS} {
		sp := New(w, a, kind, cons)
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 400; i++ {
			m := sp.Sample(rng)
			chains, err := m.Chains(w, slots)
			if err != nil {
				t.Fatal(err)
			}
			if chains["Q"].Trips(xIdx) < 2 {
				t.Fatalf("%v: sample %d left Q off the X axis (factors %v)", kind, i, m.Factors["Q"])
			}
			if chains["R"].Trips(yIdx) < 2 {
				t.Fatalf("%v: sample %d left R off the Y axis (factors %v)", kind, i, m.Factors["R"])
			}
		}
	}
}

func TestRequireSpatialBestEffortWhenImpossible(t *testing.T) {
	// A dimension of bound 1 cannot take a spatial factor; the requirement
	// degrades gracefully instead of dead-looping.
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 4, C: 4, P: 4, Q: 1, R: 1, S: 1})
	a := arch.EyerissLike(4, 4, 128)
	cons := Constraints{
		SpatialX: []string{"Q", "M"}, SpatialY: []string{"R", "C"},
		RequireSpatialX: []string{"Q"}, RequireSpatialY: []string{"R"},
	}
	sp := New(w, a, RubyS, cons)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		m := sp.Sample(rng)
		if _, err := m.Chains(w, sp.Slots()); err != nil {
			t.Fatal(err)
		}
	}
}
