// Package mapspace implements mapspace generation — the paper's central
// subject. A mapspace is the set of candidate mappings of one workload onto
// one architecture. Four formulations are provided:
//
//   - PFM: Timeloop's perfect index factorization (eq. 1) — every tiling
//     factor divides the residual dimension.
//   - Ruby: imperfect factorization everywhere (eq. 5) — any factor up to
//     the residual, with the final loop iteration handling a remainder tile.
//   - RubyS: imperfect factorization only at spatial (parFor) slots, the
//     paper's recommended trade-off between mapping quality and expansion.
//   - RubyT: imperfect factorization only at temporal slots.
//
// A Space supports random sampling (for Timeloop-style random search),
// exhaustive enumeration (for the toy studies), and exact counting of the
// per-dimension tiling choices (Table I).
package mapspace

import (
	"fmt"
	"math/rand"
	"sync"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Kind selects the factorization discipline.
type Kind uint8

const (
	// PFM is the perfect-factorization baseline mapspace.
	PFM Kind = iota
	// Ruby allows remainders at every slot.
	Ruby
	// RubyS allows remainders only at spatial slots.
	RubyS
	// RubyT allows remainders only at temporal slots.
	RubyT
)

var kindNames = map[Kind]string{PFM: "PFM", Ruby: "Ruby", RubyS: "Ruby-S", RubyT: "Ruby-T"}

// String returns the paper's name for the kind ("PFM", "Ruby", "Ruby-S",
// "Ruby-T").
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kinds lists all mapspace kinds in presentation order.
var Kinds = []Kind{PFM, Ruby, RubyS, RubyT}

// imperfectAt reports whether kind k relaxes divisibility at spatial slots.
func (k Kind) imperfectSpatial() bool { return k == Ruby || k == RubyS }

// imperfectTemporal reports whether kind k relaxes divisibility at temporal
// slots.
func (k Kind) imperfectTemporal() bool { return k == Ruby || k == RubyT }

// Constraints restricts a mapspace the way Timeloop constraint files do.
type Constraints struct {
	// SpatialX and SpatialY list the dimensions allowed to take factors > 1
	// on the corresponding array axis. nil allows every dimension.
	SpatialX []string
	SpatialY []string

	// FixedPerms locks every level's temporal loop order to the workload's
	// declaration order instead of sampling permutations. Used by the toy
	// studies where loop order is immaterial.
	FixedPerms bool

	// MaxTemporalFactor caps any single temporal factor (0 = uncapped).
	// Large caps keep random sampling inside plausible regions for huge
	// dimensions; the paper's studies do not need it.
	MaxTemporalFactor int

	// RequireSpatialX and RequireSpatialY force the listed dimensions to
	// take a spatial factor > 1 on the corresponding axis whenever the
	// dimension's residual and the axis budget allow it — the moral
	// equivalent of Timeloop constraint files pinning a dimension to an
	// array axis (e.g. true row-stationary keeps filter rows on the PE
	// rows). Enforced by the sampler; enumeration ignores it.
	RequireSpatialX []string
	RequireSpatialY []string

	// ExploreBypass lets the sampler also search storage-bypass choices
	// (ZigZag-style): each sampled mapping may skip storing a tensor at an
	// intermediate level the architecture would otherwise allow. The paper
	// fixes bypass per architecture (weights skip the Eyeriss GLB); this
	// option explores it.
	ExploreBypass bool

	// FuseTile constrains the listed dimensions for fused multi-layer
	// mapping: FuseTile[d] is the consumer's input-tile advance along d, and
	// every mapping in the space gives d a tile extent at FuseLevel that
	// divides it (a divisor-compatible refinement of the consumer's tile
	// chain), with the sub-FuseLevel chain factoring that extent perfectly so
	// fused tile boundaries stay aligned. Outside FuseLevel the dimension
	// tiles by the kind's usual rules over the ceil-divided residual — which
	// is where imperfect factorization pays off, since advances derived from
	// a consumer rarely divide the producer's bound. Dimensions not listed
	// are unconstrained. See FuseTileOf for deriving advances from an edge
	// binding.
	FuseTile map[string]int

	// FuseLevel is the architecture level whose tile the FuseTile constraint
	// pins — the shared on-chip level holding the fused intermediate. Values
	// < 1 default to level 1 (the first on-chip level). Ignored without
	// FuseTile.
	FuseLevel int
}

// required reports whether dim must take a spatial factor on the axis.
func (c Constraints) required(kind mapping.SlotKind, dim string) bool {
	var list []string
	switch kind {
	case mapping.SpatialX:
		list = c.RequireSpatialX
	case mapping.SpatialY:
		list = c.RequireSpatialY
	default:
		return false
	}
	for _, d := range list {
		if d == dim {
			return true
		}
	}
	return false
}

func (c Constraints) allowed(kind mapping.SlotKind, dim string) bool {
	var list []string
	switch kind {
	case mapping.SpatialX:
		list = c.SpatialX
	case mapping.SpatialY:
		list = c.SpatialY
	default:
		return true
	}
	if list == nil {
		return true
	}
	for _, d := range list {
		if d == dim {
			return true
		}
	}
	return false
}

// Space is a mapspace for one (workload, architecture, kind) triple. It is
// safe for concurrent use; samplers that draw in a tight loop should each
// hold a Sampler (NewSampler) for allocation-free in-place sampling.
type Space struct {
	Work *workload.Workload // the iteration space being tiled
	Arch *arch.Arch         // the hierarchy providing the slots
	Kind Kind               // the factorization discipline
	Cons Constraints        // dataflow-style restrictions

	slots    []mapping.Slot
	dimNames []string

	// fuseSlot is the slot index of FuseLevel's temporal slot when the space
	// is fused (Cons.FuseTile non-empty); -1 otherwise.
	fuseSlot int

	// divCache memoizes factor.Divisors per dimension residual: random
	// sampling hits the same few residuals millions of times.
	//ruby:guards divCache
	divMu    sync.RWMutex
	divCache map[int][]int
}

// New builds a Space.
func New(w *workload.Workload, a *arch.Arch, kind Kind, cons Constraints) *Space {
	s := &Space{
		Work: w, Arch: a, Kind: kind, Cons: cons,
		slots:    mapping.Slots(a),
		dimNames: w.DimNames(),
		divCache: make(map[int][]int),
		fuseSlot: -1,
	}
	if len(cons.FuseTile) > 0 {
		lvl := cons.FuseLevel
		if lvl < 1 {
			lvl = 1
		}
		if lvl >= len(a.Levels) {
			lvl = len(a.Levels) - 1
		}
		s.fuseSlot = mapping.FirstSlotOfLevel(s.slots, lvl)
	}
	return s
}

// divisors returns the cached sorted divisor list of n.
func (s *Space) divisors(n int) []int {
	s.divMu.RLock()
	divs, ok := s.divCache[n]
	s.divMu.RUnlock()
	if ok {
		return divs
	}
	divs = factor.Divisors(n)
	s.divMu.Lock()
	s.divCache[n] = divs
	s.divMu.Unlock()
	return divs
}

// divCache is a per-goroutine, lock-free view of the space's divisor cache:
// a flat residual-indexed table (residuals never exceed the largest dimension
// bound). Samplers and mutators each own one, so the steady-state sampling
// loop replaces two atomic lock operations per factor draw with one slice
// load. Entries alias the shared cache's slices, which are immutable.
type divCache struct {
	byN [][]int
}

// newDivCache sizes a divisor cache for the space's dimension bounds.
func (s *Space) newDivCache() *divCache {
	max := 0
	for _, d := range s.Work.Dims {
		if d.Bound > max {
			max = d.Bound
		}
	}
	return &divCache{byN: make([][]int, max+1)}
}

// divisorsFor is divisors through the caller's private cache (nil falls back
// to the shared locked cache).
//
//ruby:hotpath
func (s *Space) divisorsFor(n int, dc *divCache) []int {
	if dc != nil && n < len(dc.byN) {
		if d := dc.byN[n]; d != nil {
			return d
		}
		d := s.divisors(n)
		dc.byN[n] = d
		return d
	}
	return s.divisors(n)
}

// Slots exposes the slot list the space maps over.
func (s *Space) Slots() []mapping.Slot { return s.slots }

// chainSlots returns, for dimension dim, the factor.ChainSlot list in
// innermost-first order, encoding the kind's divisibility rules, fanout caps
// and spatial-dimension constraints.
func (s *Space) chainSlots(dim string) []factor.ChainSlot {
	out := make([]factor.ChainSlot, len(s.slots))
	for i, sl := range s.slots {
		cs := factor.ChainSlot{Kind: factor.Perfect}
		if sl.Spatial() {
			if s.Kind.imperfectSpatial() {
				cs.Kind = factor.Imperfect
			}
			cs.Max = sl.Fanout
			if !s.Cons.allowed(sl.Kind, dim) {
				cs.Max = 1
			}
		} else {
			if s.Kind.imperfectTemporal() {
				cs.Kind = factor.Imperfect
			}
			if s.Cons.MaxTemporalFactor > 0 && sl.Level != 0 {
				cs.Max = s.Cons.MaxTemporalFactor
			}
		}
		// Innermost-first ordering.
		out[len(s.slots)-1-i] = cs
	}
	return out
}

// ChainCount returns the number of tiling-factor chains available to the
// named dimension (permutations and bypass choices excluded). This is the
// quantity tabulated per formulation in Table I. Fused dimensions count
// only their constrained chains.
func (s *Space) ChainCount(dim string) uint64 {
	if a, ok := s.fusedAdvance(dim); ok {
		return s.fusedChainCount(dim, a)
	}
	return factor.CountChains(s.Work.Bound(dim), s.chainSlots(dim))
}

// enumerateChains yields dimension d's chains innermost-first, routing fused
// dimensions through their constrained enumeration.
func (s *Space) enumerateChains(d string, yield func(fs []int) bool) {
	if a, ok := s.fusedAdvance(d); ok {
		s.enumerateFusedChains(d, a, yield)
		return
	}
	factor.EnumerateChains(s.Work.Bound(d), s.chainSlots(d), yield)
}

// EnumerateChains yields every tiling chain available to the named dimension
// (outermost-first, the Mapping.Factors layout), in the deterministic order
// the Enumerator visits them. The slice passed to yield is reused across
// calls; retain with a copy. Stopping early returns false from yield.
func (s *Space) EnumerateChains(d string, yield func(fs []int) bool) {
	rev := make([]int, len(s.slots))
	s.enumerateChains(d, func(fs []int) bool {
		// fs is innermost-first; present outermost-first.
		for i, f := range fs {
			rev[len(fs)-1-i] = f
		}
		return yield(rev)
	})
}

// TotalChainCount returns the product of ChainCount over all dimensions —
// the size of the tiling mapspace.
func (s *Space) TotalChainCount() uint64 {
	total := uint64(1)
	for _, d := range s.Work.Dims {
		total *= s.ChainCount(d.Name)
	}
	return total
}

// Sample draws a random mapping. Factors are chosen slot-by-slot from each
// dimension's admissible set (divisors for perfect slots, any value up to the
// residual and fanout cap for imperfect slots); the outermost temporal slot
// absorbs whatever residual remains, exactly as in the chain formulation.
// Spatial factors additionally respect a shared per-slot fanout budget so
// that most samples pass the evaluator's fanout check. Permutations are
// uniform random unless FixedPerms is set.
//
// Sampled mappings are structurally valid but may still violate buffer
// capacities; the caller's search loop filters those, mirroring Timeloop's
// generate-then-filter design.
func (s *Space) Sample(rng *rand.Rand) *mapping.Mapping {
	m := &mapping.Mapping{}
	s.sampleInto(rng, m, make([]int, len(s.slots)), append([]string(nil), s.dimNames...), nil)
	return m
}

// Sampler owns the per-goroutine scratch for repeated in-place sampling.
// One Sampler per goroutine; the underlying Space stays shared.
type Sampler struct {
	sp     *Space
	budget []int
	dims   []string
	dc     *divCache
}

// NewSampler builds a Sampler over the space.
func (s *Space) NewSampler() *Sampler {
	return &Sampler{
		sp:     s,
		budget: make([]int, len(s.slots)),
		dims:   append([]string(nil), s.dimNames...),
		dc:     s.newDivCache(),
	}
}

// SampleInto redraws m in place, reusing its factor slices and perm storage,
// and pre-lowers the result to its dense form so the evaluation pipeline
// downstream stays allocation-free at steady state. The random draw sequence
// is identical to Sample's: a seeded search produces the same mappings
// whichever entry point it uses. The caller must own m exclusively (clone
// before sharing across goroutines).
//
//ruby:hotpath
func (sm *Sampler) SampleInto(rng *rand.Rand, m *mapping.Mapping) {
	s := sm.sp
	copy(sm.dims, s.dimNames)
	s.sampleInto(rng, m, sm.budget, sm.dims, sm.dc)
	m.Dense(s.Work, s.Arch, s.slots) // structurally valid by construction
}

// sampleInto is the sampling core behind Sample and Sampler.SampleInto.
// budget and dims are caller-owned scratch; dims must hold the dimension
// names in declaration order on entry.
//
//ruby:hotpath
func (s *Space) sampleInto(rng *rand.Rand, m *mapping.Mapping, budget []int, dims []string, dc *divCache) {
	m.Invalidate()
	if m.Factors == nil {
		m.Factors = make(map[string][]int, len(s.Work.Dims))
	}
	m.Keep = nil

	// Shared fanout budgets per spatial slot.
	for i, sl := range s.slots {
		if sl.Spatial() {
			budget[i] = sl.Fanout
		} else {
			budget[i] = 0
		}
	}

	// Visit dimensions in random order so no dimension monopolizes fanout —
	// except dimensions with a required spatial allocation, which go first
	// so the fanout budget cannot be starved before they draw.
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	if len(s.Cons.RequireSpatialX)+len(s.Cons.RequireSpatialY) > 0 {
		sortRequiredFirst(dims, s.Cons)
	}

	for _, d := range dims {
		fs := m.Factors[d]
		if len(fs) != len(s.slots) {
			fs = make([]int, len(s.slots))
			m.Factors[d] = fs
		}
		s.sampleChainInto(rng, d, budget, fs, dc)
	}

	if s.Cons.FixedPerms {
		m.Perms = mapping.DefaultPerms(s.Work, s.Arch)
	} else {
		if len(m.Perms) != len(s.Arch.Levels) {
			m.Perms = make([][]string, len(s.Arch.Levels))
		}
		for li := range m.Perms {
			p := m.Perms[li]
			if len(p) != len(s.dimNames) {
				p = append([]string(nil), s.dimNames...) //ruby:allow hotpath -- first-sample initialization; steady state copies in place
			} else {
				copy(p, s.dimNames)
			}
			rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			m.Perms[li] = p
		}
	}
	if s.Cons.ExploreBypass {
		s.sampleBypass(rng, m)
	}
}

// sampleBypass randomly drops tensors from intermediate storage levels
// (never DRAM, never the innermost level — dropping the last on-chip home
// of a tensor is almost never useful and would dominate the samples).
func (s *Space) sampleBypass(rng *rand.Rand, m *mapping.Mapping) {
	n := len(s.Arch.Levels)
	if n <= 2 {
		return
	}
	for li := 1; li < n-1; li++ {
		l := &s.Arch.Levels[li]
		var keep map[workload.Role]bool
		for _, r := range workload.Roles {
			if !l.KeepsRole(r, false) {
				continue
			}
			if keep == nil {
				keep = map[workload.Role]bool{}
				for _, rr := range workload.Roles {
					if l.KeepsRole(rr, false) {
						keep[rr] = true
					}
				}
			}
			if rng.Intn(4) == 0 {
				keep[r] = false
			}
		}
		if keep == nil {
			continue
		}
		if m.Keep == nil {
			m.Keep = make([]map[workload.Role]bool, n)
		}
		m.Keep[li] = keep
	}
}

// sampleChain draws one dimension's outermost-first factor chain, consuming
// from the shared spatial budget slice.
func (s *Space) sampleChain(rng *rand.Rand, d string, budget []int) []int {
	fs := make([]int, len(s.slots))
	s.sampleChainInto(rng, d, budget, fs, nil)
	return fs
}

// sampleChainInto is sampleChain writing into caller-owned storage (len must
// equal the slot count; every entry is overwritten).
//
//ruby:hotpath
func (s *Space) sampleChainInto(rng *rand.Rand, d string, budget, fs []int, dc *divCache) {
	if a, ok := s.fusedAdvance(d); ok {
		s.sampleFusedChainInto(rng, d, a, budget, fs, dc)
		return
	}
	r := s.Work.Dims[s.Work.DimID(d)].Bound // d is one of the space's dim names
	// Innermost-first; slot 0 of s.slots is outermost.
	for i := len(s.slots) - 1; i >= 0; i-- {
		sl := s.slots[i]
		if i == 0 {
			// Outermost temporal slot absorbs the residual.
			fs[i] = r
			break
		}
		f := s.sampleFactor(rng, sl, d, r, budget[i], s.requiredOuter(d, i), dc)
		fs[i] = f
		if sl.Spatial() && f > 1 {
			budget[i] /= f
		}
		if r > 1 {
			if sl.Spatial() && !s.Kind.imperfectSpatial() || !sl.Spatial() && !s.Kind.imperfectTemporal() {
				r /= f
			} else {
				r = factor.CeilDiv(r, f)
			}
		}
	}
}

// SampleChain draws a fresh factor chain for one dimension against a full
// fanout budget. Used by local-search mutation operators; the joint fanout
// across dimensions is re-checked by the evaluator.
func (s *Space) SampleChain(rng *rand.Rand, d string) []int {
	budget := make([]int, len(s.slots))
	for i, sl := range s.slots {
		if sl.Spatial() {
			budget[i] = sl.Fanout
		}
	}
	return s.sampleChain(rng, d, budget)
}

// SamplePerm draws a random loop order (or the canonical one under
// FixedPerms).
func (s *Space) SamplePerm(rng *rand.Rand) []string {
	p := append([]string(nil), s.Work.DimNames()...)
	if !s.Cons.FixedPerms {
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	return p
}

// requiredOuter reports whether a spatial slot outer to position i requires
// dim — inner slots must then leave residual for it.
func (s *Space) requiredOuter(dim string, i int) bool {
	if len(s.Cons.RequireSpatialX)+len(s.Cons.RequireSpatialY) == 0 {
		return false
	}
	for j := 0; j < i; j++ {
		sl := s.slots[j]
		if sl.Spatial() && s.Cons.required(sl.Kind, dim) {
			return true
		}
	}
	return false
}

// sampleFactor draws one slot factor for residual r. reserve caps the draw
// so the residual stays above 1 (an outer slot still needs a share).
//
//ruby:hotpath
func (s *Space) sampleFactor(rng *rand.Rand, sl mapping.Slot, dim string, r, budget int, reserve bool, dc *divCache) int {
	if r == 1 {
		return 1
	}
	max := r
	if reserve {
		max = r - 1 // any f < r leaves residual ceil(r/f) >= 2
	}
	imperfect := s.Kind.imperfectTemporal()
	if sl.Spatial() {
		imperfect = s.Kind.imperfectSpatial()
		if !s.Cons.allowed(sl.Kind, dim) {
			return 1
		}
		if budget < max {
			max = budget
		}
	} else if s.Cons.MaxTemporalFactor > 0 && s.Cons.MaxTemporalFactor < max {
		max = s.Cons.MaxTemporalFactor
	}
	if max < 1 {
		max = 1
	}
	if sl.Spatial() && s.Cons.required(sl.Kind, dim) && max >= 2 {
		// Forced spatial allocation: draw from [2, max] (smallest divisor
		// >= 2 for perfect slots).
		if imperfect {
			return 2 + rng.Intn(max-1)
		}
		if f := s.divisorGE2LE(rng, r, max, dc); f > 1 {
			return f
		}
		return 1
	}
	if imperfect {
		// Mixture proposal over the imperfect factor set [1, max]. Every
		// value has nonzero probability (the mapspace's membership is
		// unchanged), but density concentrates where high-quality mappings
		// live: exact divisors (the PFM subset, so the superset property
		// pays off in practice) and the resource-saturating factor max
		// (Ruby-S's raison d'etre: filling the fanout despite remainders).
		switch rng.Intn(10) {
		case 0, 1, 2:
			return max
		case 3, 4, 5:
			return s.cappedDivisor(rng, r, max, dc)
		default:
			return 1 + rng.Intn(max)
		}
	}
	return s.cappedDivisor(rng, r, max, dc)
}

// sortRequiredFirst stably moves dimensions with required spatial
// allocations to the front of the sampling order, in place (the sampler
// calls it once per sample; dimension counts are tiny).
func sortRequiredFirst(dims []string, cons Constraints) {
	isReq := func(d string) bool {
		return cons.required(mapping.SpatialX, d) || cons.required(mapping.SpatialY, d)
	}
	k := 0
	for i, d := range dims {
		if !isReq(d) {
			continue
		}
		copy(dims[k+1:i+1], dims[k:i])
		dims[k] = d
		k++
	}
}

// divisorGE2LE draws a random divisor of r in [2, max], or 1 when none
// exists. The divisor list is sorted with 1 first, so the candidates are the
// cached list's [1, hi) window; the rng draw count and selected values match
// the pre-cache implementation exactly.
func (s *Space) divisorGE2LE(rng *rand.Rand, r, max int, dc *divCache) int {
	divs := s.divisorsFor(r, dc)
	hi := len(divs)
	for hi > 0 && divs[hi-1] > max {
		hi--
	}
	if hi <= 1 {
		return 1
	}
	return divs[1+rng.Intn(hi-1)]
}

// cappedDivisor draws a uniform random divisor of r not exceeding max
// (falling back to 1, which always divides).
func (s *Space) cappedDivisor(rng *rand.Rand, r, max int, dc *divCache) int {
	divs := s.divisorsFor(r, dc)
	hi := len(divs)
	for hi > 0 && divs[hi-1] > max {
		hi--
	}
	if hi == 0 {
		return 1
	}
	return divs[rng.Intn(hi)]
}

// Enumerate yields every mapping in the tiling mapspace with canonical
// (declaration-order) permutations, stopping early if yield returns false.
// Feasible only for small workloads; the toy studies of Section III use it.
func (s *Space) Enumerate(yield func(*mapping.Mapping) bool) {
	en := s.NewEnumerator()
	for m := en.Next(); m != nil; m = en.Next() {
		if !yield(m) {
			return
		}
	}
}

// ChainRange is a half-open interval [Lo, Hi) of leading-dimension chain
// indices. Restricting an Enumerator to a ChainRange carves the enumeration
// into a contiguous shard: the ranges produced by Space.ShardLeading
// partition the full scan, so their union visits every mapping exactly once.
type ChainRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Empty reports whether the range selects no chains. The zero ChainRange is
// empty, which callers use as "no restriction".
func (r ChainRange) Empty() bool { return r.Hi <= r.Lo }

// LeadingDim returns the name of the enumeration's leading (most
// significant) dimension — the one a ChainRange restricts.
func (s *Space) LeadingDim() string { return s.Work.Dims[0].Name }

// ShardLeading splits the leading dimension's chain count into at most n
// balanced contiguous ranges (sizes differ by at most one, larger shards
// first). Fewer than n ranges are returned when the dimension has fewer
// chains than requested shards; n < 1 is treated as 1. The result is a
// partition of [0, ChainCount(LeadingDim())).
func (s *Space) ShardLeading(n int) []ChainRange {
	if n < 1 {
		n = 1
	}
	total := int(s.ChainCount(s.LeadingDim()))
	if total < 1 {
		total = 1
	}
	if n > total {
		n = total
	}
	out := make([]ChainRange, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		size := total / n
		if i < total%n {
			size++
		}
		out = append(out, ChainRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Enumerator steps through the tiling mapspace one mapping at a time, in the
// same deterministic order Enumerate visits. Unlike the callback form, its
// position (an odometer over per-dimension chain indices) can be read with
// Index and re-established with SetIndex — which is what lets the exhaustive
// searcher checkpoint mid-scan and resume without re-enumerating the prefix.
// RestrictLeading confines the scan to a leading-dimension chain range for
// sharded (distributed) enumeration.
type Enumerator struct {
	sp     *Space
	dims   []string
	perms  [][]string
	chains [][][]int // per dimension, outermost-first factor slices
	idx    []int
	done   bool

	// Leading-dimension restriction: the odometer's dim-0 digit runs over
	// [lo0, hi0) instead of [0, len(chains[0])).
	lo0, hi0 int
}

// NewEnumerator builds an enumerator positioned at the first mapping.
func (s *Space) NewEnumerator() *Enumerator {
	dims := s.Work.DimNames()
	chains := make([][][]int, len(dims))
	for di, d := range dims {
		s.enumerateChains(d, func(fs []int) bool {
			// fs is innermost-first; store outermost-first.
			rev := make([]int, len(fs))
			for i, f := range fs {
				rev[len(fs)-1-i] = f
			}
			chains[di] = append(chains[di], rev)
			return true
		})
	}
	e := &Enumerator{
		sp:     s,
		dims:   dims,
		perms:  mapping.DefaultPerms(s.Work, s.Arch),
		chains: chains,
		idx:    make([]int, len(dims)),
	}
	e.hi0 = len(chains[0])
	return e
}

// RestrictLeading confines the enumeration to leading-dimension chain
// indices [lo, hi) and repositions the enumerator at the range's first
// mapping. The restricted scans produced by Space.ShardLeading's ranges
// visit, between them, exactly the mappings of the unrestricted scan, each
// once, preserving order within each shard. Restrict before stepping: any
// progress (Next calls or SetIndex) is discarded.
func (e *Enumerator) RestrictLeading(lo, hi int) error {
	n := len(e.chains[0])
	if lo < 0 || hi > n || lo >= hi {
		return fmt.Errorf("mapspace: leading chain range [%d, %d) invalid for %d chains", lo, hi, n)
	}
	e.lo0, e.hi0 = lo, hi
	for i := range e.idx {
		e.idx[i] = 0
	}
	e.idx[0] = lo
	e.done = false
	return nil
}

// Next returns the next mapping of the enumeration, or nil once exhausted.
// Every returned mapping is freshly allocated (its factor slices alias the
// enumerator's precomputed chains, which are never mutated), so callers may
// retain and batch them.
func (e *Enumerator) Next() *mapping.Mapping {
	if e.done {
		return nil
	}
	m := &mapping.Mapping{Factors: make(map[string][]int, len(e.dims)), Perms: e.perms}
	for di, d := range e.dims {
		m.Factors[d] = e.chains[di][e.idx[di]]
	}
	// Odometer increment. The leading digit runs over the (possibly
	// restricted) window [lo0, hi0).
	k := len(e.dims) - 1
	for k >= 0 {
		lim, reset := len(e.chains[k]), 0
		if k == 0 {
			lim, reset = e.hi0, e.lo0
		}
		e.idx[k]++
		if e.idx[k] < lim {
			break
		}
		e.idx[k] = reset
		k--
	}
	if k < 0 {
		e.done = true
	}
	return m
}

// Done reports whether the enumeration is exhausted.
func (e *Enumerator) Done() bool { return e.done }

// Index returns a copy of the enumerator's odometer position (the next
// mapping to be produced). Together with Done it fully describes the scan
// position for checkpointing.
func (e *Enumerator) Index() []int {
	return append([]int(nil), e.idx...)
}

// SetIndex repositions the enumerator at the given odometer state, as
// previously returned by Index. It returns an error when the index does not
// match the space's dimensions or chain counts (e.g. a checkpoint taken over
// a different workload).
func (e *Enumerator) SetIndex(idx []int, done bool) error {
	if len(idx) != len(e.chains) {
		return fmt.Errorf("mapspace: enumerator index has %d dims, space has %d", len(idx), len(e.chains))
	}
	for i, v := range idx {
		lo, hi := 0, len(e.chains[i])
		if i == 0 {
			lo, hi = e.lo0, e.hi0
		}
		if v < lo || v >= hi {
			return fmt.Errorf("mapspace: enumerator index[%d] = %d out of range [%d, %d)", i, v, lo, hi)
		}
	}
	copy(e.idx, idx)
	e.done = done
	return nil
}
