package mapspace

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/workload"
)

// fusedToySpace constrains the toy vector's X to advance 20 at the GLB
// (slots: T(DRAM)=0, T(GLB)=1, SX(GLB)=2; fuse slot 1).
func fusedToySpace(kind Kind, advance int) *Space {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return New(w, a, kind, Constraints{
		FixedPerms: true,
		FuseTile:   map[string]int{"X": advance},
		FuseLevel:  1,
	})
}

// fusedExtent returns the chain's tile extent at the space's fuse slot
// (outermost-first chain layout).
func fusedExtent(s *Space, fs []int) int {
	e := 1
	for i := s.fuseSlot; i < len(s.slots); i++ {
		e *= fs[i]
	}
	return e
}

func allImperfect(n int) []factor.ChainSlot {
	out := make([]factor.ChainSlot, n)
	for i := range out {
		out[i] = factor.ChainSlot{Kind: factor.Imperfect}
	}
	return out
}

// Every enumerated fused chain must have an extent dividing the advance,
// built from a perfect inner sub-chain, and still be a valid chain over the
// full bound; the count must match the enumeration exactly and stay below
// the unfused count.
func TestFusedEnumerationMatchesCount(t *testing.T) {
	for _, kind := range Kinds {
		s := fusedToySpace(kind, 20)
		free := toySpace(kind)
		bound := s.Work.Bound("X")
		n := 0
		rev := make([]int, len(s.slots))
		s.EnumerateChains("X", func(fs []int) bool {
			n++
			e := fusedExtent(s, fs)
			if 20%e != 0 {
				t.Fatalf("%v: extent %d of %v does not divide advance 20", kind, e, fs)
			}
			if kind == PFM && bound%e != 0 {
				t.Fatalf("%v: extent %d of %v does not divide bound %d", kind, e, fs, bound)
			}
			// Inner sub-chain factors e perfectly.
			r := e
			for i := len(fs) - 1; i >= s.fuseSlot; i-- {
				if r%fs[i] != 0 {
					t.Fatalf("%v: inner factor %d at slot %d imperfect for extent %d (%v)", kind, fs[i], i, e, fs)
				}
				r /= fs[i]
			}
			if r != 1 {
				t.Fatalf("%v: inner product misses extent %d (%v)", kind, e, fs)
			}
			// The full chain covers the bound under ceiling semantics.
			for i, f := range fs {
				rev[len(fs)-1-i] = f
			}
			if err := factor.ValidateChain(bound, allImperfect(len(fs)), rev); err != nil {
				t.Fatalf("%v: chain %v invalid: %v", kind, fs, err)
			}
			return true
		})
		if got := s.ChainCount("X"); got != uint64(n) {
			t.Errorf("%v: ChainCount = %d, enumeration yields %d", kind, got, n)
		}
		if free.ChainCount("X") <= uint64(n) {
			t.Errorf("%v: fused count %d not below unfused %d", kind, n, free.ChainCount("X"))
		}
	}
}

// Sampled mappings and mutator proposals must stay inside the fused space.
func TestFusedSampleAndMutateHonorConstraint(t *testing.T) {
	for _, kind := range Kinds {
		s := fusedToySpace(kind, 20)
		bound := s.Work.Bound("X")
		rng := rand.New(rand.NewSource(7))
		sm := s.NewSampler()
		mu := s.NewMutator()
		m := s.Sample(rng)
		check := func(ctx string, fs []int) {
			e := fusedExtent(s, fs)
			if 20%e != 0 {
				t.Fatalf("%v %s: extent %d of %v does not divide advance", kind, ctx, e, fs)
			}
			if kind == PFM && bound%e != 0 {
				t.Fatalf("%v %s: extent %d does not divide bound", kind, ctx, e)
			}
		}
		for i := 0; i < 200; i++ {
			sm.SampleInto(rng, m)
			check("sample", m.Factors["X"])
			mv := mu.ProposeChainID(rng, 0)
			mv.Apply(m)
			check("mutate", m.Factors["X"])
		}
	}
}

// The PFM fused space must be a subset of the Ruby fused space: advance 24
// has divisors (3, 6, 8, 12, 24) that do not divide the bound 100, so PFM
// admits strictly fewer extents.
func TestFusedKindOrdering(t *testing.T) {
	pfm := fusedToySpace(PFM, 24).ChainCount("X")
	ruby := fusedToySpace(Ruby, 24).ChainCount("X")
	if pfm >= ruby {
		t.Errorf("PFM fused count %d should stay below Ruby fused count %d", pfm, ruby)
	}
	// Advance 1 pins the fused tile to a single element: the only freedom
	// left is the outer region.
	one := fusedToySpace(Ruby, 1)
	one.EnumerateChains("X", func(fs []int) bool {
		if e := fusedExtent(one, fs); e != 1 {
			t.Fatalf("advance 1 admitted extent %d (%v)", e, fs)
		}
		return true
	})
}

// FuseTileOf must derive producer advances of stride x consumer tile extent.
func TestFuseTileOf(t *testing.T) {
	prod := workload.MustConv2D(workload.Conv2DParams{
		Name: "p", N: 1, M: 8, C: 4, P: 16, Q: 16, R: 1, S: 1})
	cons := workload.MustConv2D(workload.Conv2DParams{
		Name: "c", N: 1, M: 4, C: 8, P: 8, Q: 8, R: 3, S: 3,
		StrideH: 2, StrideW: 2})
	net := workload.MustNetwork("t",
		[]workload.Node{{Name: "p", Work: prod}, {Name: "c", Work: cons}},
		[]workload.Edge{{From: "p", To: "c", Dims: map[string]string{
			"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
	b, err := net.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ToyGLB(6, 512)
	cs := New(cons, a, Ruby, Constraints{FixedPerms: true})
	rng := rand.New(rand.NewSource(3))
	cm := cs.Sample(rng)
	dn, err := cm.Dense(cons, a, cs.Slots())
	if err != nil {
		t.Fatal(err)
	}
	ft, err := FuseTileOf(b, a, cm, 1)
	if err != nil {
		t.Fatal(err)
	}
	si := cs.FuseSlot()
	if si >= 0 {
		t.Fatal("unfused consumer space should have no fuse slot")
	}
	for _, pr := range b.Pairs {
		want := pr.Stride * dn.CumAt(int(pr.ConsID), 1) // slot 1 = GLB temporal
		if bp := prod.Bound(pr.ProdDim); want > bp {
			want = bp
		}
		if ft[pr.ProdDim] != want {
			t.Errorf("advance[%s] = %d, want %d", pr.ProdDim, ft[pr.ProdDim], want)
		}
	}
	// The derived constraint must produce a non-empty producer space whose
	// samples lower cleanly.
	ps := New(prod, a, RubyS, Constraints{FixedPerms: true, FuseTile: ft, FuseLevel: 1})
	if ps.TotalChainCount() == 0 {
		t.Fatal("fused producer space is empty")
	}
	pm := ps.Sample(rng)
	if _, err := pm.Dense(prod, a, ps.Slots()); err != nil {
		t.Fatalf("fused sample does not lower: %v", err)
	}
}
