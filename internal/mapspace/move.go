package mapspace

import (
	"math/rand"

	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Move is one reversible local-search mutation of a mapping: replace one
// dimension's tiling chain, replace one level's temporal loop order, or
// toggle one storage-bypass bit. A Move is drawn by a Mutator (which owns
// its storage), applied to a mapping with Apply and — when the searcher
// rejects the candidate — reverted exactly with Undo.
//
// Apply patches the mapping's memoized dense lowering in place (only the
// affected row or mask entry) and clears only the memoized key, so the
// sample→lower→evaluate pipeline downstream never re-lowers or re-validates
// the untouched dimensions and levels. The move's Delta tells the
// incremental evaluator (nest.Plan.EvaluateDelta) exactly which cached
// contributions to recompute.
//
// The usual single-owner mutation contract applies: the mapping must not be
// shared with concurrent readers while moves are applied to it.
type Move struct {
	sp    *Space
	delta mapping.Delta
	dim   string

	chain   []int    // proposed chain (outermost-first), DeltaChain
	perm    []string // proposed loop order, DeltaPerm
	permIDs []int16  // perm as workload dim ids, kept in lockstep

	// State captured by Apply for exact reversal.
	oldChain     []int
	oldPerm      []string
	oldPermIDs   []int16
	oldKeep      bool
	oldMask      int8
	oldMaskLen   int
	createdSlice bool // Apply allocated m.Keep
	createdMap   bool // Apply allocated m.Keep[Level]
	applied      bool
}

// Delta returns the integer-id description of the move for the delta
// evaluation kernel.
func (mv *Move) Delta() mapping.Delta { return mv.delta }

// Apply mutates m in place with the proposed change, saving whatever state
// Undo needs to restore it exactly. When m carries a dense lowering for this
// space's evaluator context, only the affected chain row, perm row or keep
// mask is patched; otherwise the lowering is invalidated wholesale and the
// next Dense call rebuilds it.
//
//ruby:hotpath
func (mv *Move) Apply(m *mapping.Mapping) {
	if mv.applied {
		panic("mapspace: Move.Apply called twice without Undo or a new proposal")
	}
	mv.applied = true
	s := mv.sp
	dn := m.UpdatableDense(s.Work, s.Arch, s.slots)
	switch mv.delta.Kind {
	case mapping.DeltaChain:
		fs := m.Factors[mv.dim]
		if len(fs) != len(s.slots) {
			// Cold path: the mapping was never shaped for this space.
			fs = make([]int, len(s.slots))
			if m.Factors == nil {
				m.Factors = make(map[string][]int, len(s.dimNames))
			}
			m.Factors[mv.dim] = fs
		}
		copy(mv.oldChain, fs)
		copy(fs, mv.chain)
		if dn != nil {
			dn.SetChainRow(mv.delta.Dim, s.Work.Bound(mv.dim), fs)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	case mapping.DeltaPerm:
		p := m.Perms[mv.delta.Level]
		copy(mv.oldPerm, p)
		copy(p, mv.perm)
		if dn != nil {
			base := mv.delta.Level * dn.NDims
			copy(mv.oldPermIDs, dn.Perm[base:base+dn.NDims])
			dn.SetPermRowIDs(mv.delta.Level, mv.permIDs)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	case mapping.DeltaKeep:
		li, r := mv.delta.Level, mv.delta.Role
		mv.createdSlice = m.Keep == nil
		if mv.createdSlice {
			m.Keep = make([]map[workload.Role]bool, len(s.Arch.Levels))
		}
		mv.createdMap = m.Keep[li] == nil
		if mv.createdMap {
			keep := make(map[workload.Role]bool, len(workload.Roles))
			l := &s.Arch.Levels[li]
			for _, rr := range workload.Roles {
				if l.KeepsRole(rr, false) {
					keep[rr] = true
				}
			}
			m.Keep[li] = keep
		}
		mv.oldKeep = m.Keep[li][r]
		m.Keep[li][r] = !mv.oldKeep
		if dn != nil {
			mv.oldMaskLen = len(dn.KeepMask)
			if li < mv.oldMaskLen {
				mv.oldMask = dn.KeepMask[li]
			} else {
				mv.oldMask = -1
			}
			var mask int8
			for _, rr := range workload.Roles {
				if m.Keep[li][rr] {
					mask |= int8(mapping.RoleBit(rr))
				}
			}
			dn.SetKeepMask(li, len(m.Keep), mask)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	}
}

// Undo restores m to its exact pre-Apply state, including the
// representation-level details Key and Encode observe (nil-ness of bypass
// overrides included) and the dense lowering.
//
//ruby:hotpath
func (mv *Move) Undo(m *mapping.Mapping) {
	if !mv.applied {
		panic("mapspace: Move.Undo without a preceding Apply")
	}
	mv.applied = false
	s := mv.sp
	dn := m.UpdatableDense(s.Work, s.Arch, s.slots)
	switch mv.delta.Kind {
	case mapping.DeltaChain:
		fs := m.Factors[mv.dim]
		copy(fs, mv.oldChain)
		if dn != nil {
			dn.SetChainRow(mv.delta.Dim, s.Work.Bound(mv.dim), fs)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	case mapping.DeltaPerm:
		p := m.Perms[mv.delta.Level]
		copy(p, mv.oldPerm)
		if dn != nil {
			dn.SetPermRowIDs(mv.delta.Level, mv.oldPermIDs)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	case mapping.DeltaKeep:
		li := mv.delta.Level
		if mv.createdMap {
			m.Keep[li] = nil
		} else {
			m.Keep[li][mv.delta.Role] = mv.oldKeep
		}
		if mv.createdSlice {
			m.Keep = nil
		}
		if dn != nil {
			if li < mv.oldMaskLen {
				dn.KeepMask[li] = mv.oldMask
			}
			dn.TruncKeepMask(mv.oldMaskLen)
			m.ResetKey()
		} else {
			m.Invalidate()
		}
	}
}

// Mutator draws Moves over one space. It owns the proposal scratch (chain,
// perm, fanout budget, divisor cache) plus a single Move that is reused
// across proposals, so steady-state local search allocates nothing. One
// Mutator per goroutine; the Space stays shared.
//
// Proposing a new move abandons the previous one: an applied move that was
// never undone becomes a permanent part of the mapping (that is how accepted
// moves and genetic mutation work).
type Mutator struct {
	sp     *Space
	budget []int
	dc     *divCache
	mv     Move

	// Togglable (level, role) bypass pairs, fixed at construction. Empty
	// unless the space explores bypass.
	bypassLvls  []int
	bypassRoles []workload.Role
}

// NewMutator builds a Mutator over the space.
func (s *Space) NewMutator() *Mutator {
	mu := &Mutator{sp: s, budget: make([]int, len(s.slots)), dc: s.newDivCache()}
	mu.mv.sp = s
	mu.mv.chain = make([]int, len(s.slots))
	mu.mv.oldChain = make([]int, len(s.slots))
	mu.mv.perm = make([]string, len(s.dimNames))
	mu.mv.permIDs = make([]int16, len(s.dimNames))
	mu.mv.oldPerm = make([]string, len(s.dimNames))
	mu.mv.oldPermIDs = make([]int16, len(s.dimNames))
	if s.Cons.ExploreBypass {
		n := len(s.Arch.Levels)
		for li := 1; li < n-1; li++ {
			l := &s.Arch.Levels[li]
			for _, r := range workload.Roles {
				if l.KeepsRole(r, false) {
					mu.bypassLvls = append(mu.bypassLvls, li)
					mu.bypassRoles = append(mu.bypassRoles, r)
				}
			}
		}
	}
	return mu
}

// NumDims returns the number of workload dimensions the mutator proposes
// over (chain moves address them by declaration-order id).
func (mu *Mutator) NumDims() int { return len(mu.sp.dimNames) }

// Space returns the space the mutator proposes over.
func (mu *Mutator) Space() *Space { return mu.sp }

// Propose draws the next move with the searchers' historical proposal
// distribution: 1/4 loop-order swaps, otherwise a tiling-chain resample —
// and, in bypass-exploring spaces, a 1/8 share of the remainder toggles a
// bypass bit. For perm and chain proposals the rng draw sequence matches the
// pre-Move mutation code (SamplePerm / SampleChain) exactly, so seeded
// searches reproduce their historical trajectories.
//
//ruby:hotpath
func (mu *Mutator) Propose(rng *rand.Rand) *Move {
	if rng.Intn(4) == 0 {
		return mu.ProposePerm(rng, rng.Intn(len(mu.sp.Arch.Levels)))
	}
	if len(mu.bypassLvls) > 0 && rng.Intn(8) == 0 {
		k := rng.Intn(len(mu.bypassLvls))
		return mu.ProposeKeep(mu.bypassLvls[k], mu.bypassRoles[k])
	}
	return mu.ProposeChainID(rng, rng.Intn(len(mu.sp.dimNames)))
}

// ProposeChain draws a fresh tiling chain for the named dimension against a
// full fanout budget (the joint fanout across dimensions is re-checked by
// the evaluator), with the same rng draws as Space.SampleChain.
//
//ruby:hotpath
func (mu *Mutator) ProposeChain(rng *rand.Rand, d string) *Move {
	for di, name := range mu.sp.dimNames {
		if name == d {
			return mu.ProposeChainID(rng, di)
		}
	}
	panic("mapspace: ProposeChain of unknown dimension " + d)
}

// ProposeChainID is ProposeChain by dimension id (declaration order).
//
//ruby:hotpath
func (mu *Mutator) ProposeChainID(rng *rand.Rand, di int) *Move {
	s := mu.sp
	mv := &mu.mv
	mv.applied = false
	mv.delta = mapping.Delta{Kind: mapping.DeltaChain, Dim: di}
	mv.dim = s.dimNames[di]
	for i, sl := range s.slots {
		if sl.Spatial() {
			mu.budget[i] = sl.Fanout
		} else {
			mu.budget[i] = 0
		}
	}
	s.sampleChainInto(rng, mv.dim, mu.budget, mv.chain, mu.dc)
	return mv
}

// ProposeChainSet proposes replacing dimension di's tiling chain with the
// given chain (outermost-first, len(Slots()) entries). Draw-free, so
// systematic chain scans (the guided searcher's exact coordinate descent
// over Space.EnumerateChains) consume no randomness. The chain's structural
// validity is the caller's concern; the evaluator re-checks fanout and
// capacity as usual.
//
//ruby:hotpath
func (mu *Mutator) ProposeChainSet(di int, chain []int) *Move {
	mv := &mu.mv
	mv.applied = false
	mv.delta = mapping.Delta{Kind: mapping.DeltaChain, Dim: di}
	mv.dim = mu.sp.dimNames[di]
	copy(mv.chain, chain)
	return mv
}

// ProposePerm draws a fresh loop order for level li, with the same rng draws
// as Space.SamplePerm (the canonical order under FixedPerms).
//
//ruby:hotpath
func (mu *Mutator) ProposePerm(rng *rand.Rand, li int) *Move {
	s := mu.sp
	mv := &mu.mv
	mv.applied = false
	mv.delta = mapping.Delta{Kind: mapping.DeltaPerm, Level: li}
	copy(mv.perm, s.dimNames)
	for i := range mv.permIDs {
		mv.permIDs[i] = int16(i) // dimNames is workload declaration order
	}
	if !s.Cons.FixedPerms {
		rng.Shuffle(len(mv.perm), func(i, j int) {
			mv.perm[i], mv.perm[j] = mv.perm[j], mv.perm[i]
			mv.permIDs[i], mv.permIDs[j] = mv.permIDs[j], mv.permIDs[i]
		})
	}
	return mv
}

// ProposeKeep proposes toggling whether level li stores role r. The pair
// must be togglable: an intermediate level (not DRAM, not the innermost)
// whose architecture policy stores the role.
func (mu *Mutator) ProposeKeep(li int, r workload.Role) *Move {
	mv := &mu.mv
	mv.applied = false
	mv.delta = mapping.Delta{Kind: mapping.DeltaKeep, Level: li, Role: r}
	return mv
}

// NumBypass returns the number of togglable (level, role) bypass pairs
// (zero unless the space explores bypass), addressable by ProposeKeepAt.
func (mu *Mutator) NumBypass() int { return len(mu.bypassLvls) }

// ProposeKeepAt proposes toggling the k-th togglable bypass pair,
// 0 <= k < NumBypass. Draw-free, so systematic neighborhood scans (the
// guided searcher) can walk every pair without consuming randomness.
func (mu *Mutator) ProposeKeepAt(k int) *Move {
	return mu.ProposeKeep(mu.bypassLvls[k], mu.bypassRoles[k])
}
