package mapspace

import (
	"fmt"
	"math/rand"

	"ruby/internal/arch"
	"ruby/internal/factor"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Fused mapspaces constrain a producer layer's tiling to the tile boundaries
// its consumer reads at, so the intermediate tensor can live at the shared
// on-chip level instead of round-tripping through DRAM. A fused dimension d
// with advance A = Cons.FuseTile[d] admits exactly the chains whose tile
// extent e at the fusion slot divides A, built from
//
//   - an inner sub-chain (slots at and below the fusion level) that factors
//     e perfectly, keeping produced tiles aligned to consumed tiles, and
//   - an outer sub-chain covering ceil(bound/e) by the kind's usual rules.
//
// Nested ceiling division composes (ceil(ceil(b/x)/y) = ceil(b/(xy))), so
// every such chain is a valid chain over the full bound; under PFM the
// extent must additionally divide the bound. The extent e is the product of
// the inner factors, so distinct extents yield disjoint chain sets and the
// fused space is counted and enumerated without duplicates.

// fusedAdvance returns the fused advance constraining dim, if any.
func (s *Space) fusedAdvance(dim string) (int, bool) {
	if s.fuseSlot < 0 {
		return 0, false
	}
	a, ok := s.Cons.FuseTile[dim]
	if !ok || a < 1 {
		return 0, false
	}
	return a, true
}

// FuseSlot returns the slot index the FuseTile constraint pins, or -1 when
// the space is not fused.
func (s *Space) FuseSlot() int { return s.fuseSlot }

// fusedExtentOK reports whether extent e is admissible for a dimension of
// the given bound: it fits the bound, and under PFM divides it. (That e
// divides the advance is the caller's loop invariant.)
func (s *Space) fusedExtentOK(e, bound int) bool {
	if e > bound {
		return false
	}
	return s.Kind != PFM || bound%e == 0
}

// innerChainSlots returns the factor slots of the fused inner region — the
// fusion slot and everything inside it, innermost-first. All slots are
// Perfect regardless of kind: the inner chain must factor the fused extent
// exactly. The fusion slot itself is exempt from MaxTemporalFactor because
// it absorbs the extent residual, like the outermost slot in an unfused
// chain.
func (s *Space) innerChainSlots(dim string) []factor.ChainSlot {
	n := len(s.slots)
	out := make([]factor.ChainSlot, n-s.fuseSlot)
	for i := s.fuseSlot; i < n; i++ {
		sl := s.slots[i]
		cs := factor.ChainSlot{Kind: factor.Perfect}
		if sl.Spatial() {
			cs.Max = sl.Fanout
			if !s.Cons.allowed(sl.Kind, dim) {
				cs.Max = 1
			}
		} else if s.Cons.MaxTemporalFactor > 0 && i != s.fuseSlot {
			cs.Max = s.Cons.MaxTemporalFactor
		}
		out[n-1-i] = cs
	}
	return out
}

// outerChainSlots returns the factor slots outside the fusion slot,
// innermost-first, under the kind's usual rules (the DRAM slot absorbs).
func (s *Space) outerChainSlots(dim string) []factor.ChainSlot {
	out := make([]factor.ChainSlot, s.fuseSlot)
	for i := 0; i < s.fuseSlot; i++ {
		sl := s.slots[i]
		cs := factor.ChainSlot{Kind: factor.Perfect}
		if sl.Spatial() {
			if s.Kind.imperfectSpatial() {
				cs.Kind = factor.Imperfect
			}
			cs.Max = sl.Fanout
			if !s.Cons.allowed(sl.Kind, dim) {
				cs.Max = 1
			}
		} else {
			if s.Kind.imperfectTemporal() {
				cs.Kind = factor.Imperfect
			}
			if s.Cons.MaxTemporalFactor > 0 && sl.Level != 0 {
				cs.Max = s.Cons.MaxTemporalFactor
			}
		}
		out[s.fuseSlot-1-i] = cs
	}
	return out
}

// fusedChainCount counts the constrained chains of a fused dimension: the
// sum over admissible extents of inner-chain count times outer-chain count.
func (s *Space) fusedChainCount(dim string, advance int) uint64 {
	b := s.Work.Bound(dim)
	inner := s.innerChainSlots(dim)
	outer := s.outerChainSlots(dim)
	var total uint64
	for _, e := range s.divisors(advance) {
		if !s.fusedExtentOK(e, b) {
			continue
		}
		total += factor.CountChains(e, inner) * factor.CountChains(factor.CeilDiv(b, e), outer)
	}
	return total
}

// enumerateFusedChains yields the fused dimension's chains innermost-first:
// extents ascending, inner chains major, outer chains minor. The yielded
// slice is reused; retain with a copy.
func (s *Space) enumerateFusedChains(dim string, advance int, yield func(fs []int) bool) {
	b := s.Work.Bound(dim)
	n := len(s.slots)
	inner := s.innerChainSlots(dim)
	outer := s.outerChainSlots(dim)
	buf := make([]int, n)
	cont := true
	for _, e := range s.divisors(advance) {
		if !s.fusedExtentOK(e, b) {
			continue
		}
		factor.EnumerateChains(e, inner, func(ifs []int) bool {
			copy(buf[:n-s.fuseSlot], ifs)
			factor.EnumerateChains(factor.CeilDiv(b, e), outer, func(ofs []int) bool {
				copy(buf[n-s.fuseSlot:], ofs)
				cont = yield(buf)
				return cont
			})
			return cont
		})
		if !cont {
			return
		}
	}
}

// sampleFusedExtent draws the fused tile extent: with probability 1/4 the
// largest admissible divisor of the advance (saturating the fused tile),
// otherwise uniform over the admissible divisors.
func (s *Space) sampleFusedExtent(rng *rand.Rand, advance, bound int, dc *divCache) int {
	divs := s.divisorsFor(advance, dc)
	cnt, largest := 0, 1
	for _, e := range divs {
		if s.fusedExtentOK(e, bound) {
			cnt++
			if e > largest {
				largest = e
			}
		}
	}
	if cnt <= 1 {
		return 1 // extent 1 is always admissible
	}
	if rng.Intn(4) == 0 {
		return largest
	}
	k := rng.Intn(cnt)
	for _, e := range divs {
		if s.fusedExtentOK(e, bound) {
			if k == 0 {
				return e
			}
			k--
		}
	}
	return 1
}

// sampleFusedChainInto draws one fused dimension's outermost-first chain
// into fs, consuming from the shared spatial budget: extent first, then
// perfect inner factors with the fusion slot absorbing, then kind-ruled
// outer factors with the DRAM slot absorbing.
//
//ruby:hotpath
func (s *Space) sampleFusedChainInto(rng *rand.Rand, d string, advance int, budget, fs []int, dc *divCache) {
	b := s.Work.Bound(d)
	e := s.sampleFusedExtent(rng, advance, b, dc)

	// Inner region: perfect divisors of the extent; the fusion slot absorbs
	// what the draws leave so the inner product equals e exactly.
	r := e
	for i := len(s.slots) - 1; i > s.fuseSlot; i-- {
		sl := s.slots[i]
		f := 1
		if r > 1 {
			if sl.Spatial() {
				if s.Cons.allowed(sl.Kind, d) {
					max := r
					if budget[i] < max {
						max = budget[i]
					}
					if s.Cons.required(sl.Kind, d) {
						f = s.divisorGE2LE(rng, r, max, dc)
					} else {
						f = s.cappedDivisor(rng, r, max, dc)
					}
				}
			} else {
				max := r
				if s.Cons.MaxTemporalFactor > 0 && s.Cons.MaxTemporalFactor < max {
					max = s.Cons.MaxTemporalFactor
				}
				f = s.cappedDivisor(rng, r, max, dc)
			}
		}
		fs[i] = f
		if sl.Spatial() && f > 1 {
			budget[i] /= f
		}
		r /= f
	}
	fs[s.fuseSlot] = r

	// Outer region: the kind's usual rules over the remaining coverage.
	r = factor.CeilDiv(b, e)
	for i := s.fuseSlot - 1; i >= 1; i-- {
		sl := s.slots[i]
		f := s.sampleFactor(rng, sl, d, r, budget[i], s.requiredOuter(d, i), dc)
		fs[i] = f
		if sl.Spatial() && f > 1 {
			budget[i] /= f
		}
		if r > 1 {
			if sl.Spatial() && !s.Kind.imperfectSpatial() || !sl.Spatial() && !s.Kind.imperfectTemporal() {
				r /= f
			} else {
				r = factor.CeilDiv(r, f)
			}
		}
	}
	if s.fuseSlot > 0 {
		fs[0] = r
	}
}

// FuseTileOf derives the producer-side FuseTile constraint from a consumer's
// mapping: for each dimension pair of the edge binding, the producer must
// advance its output along the producer dim in steps dividing
//
//	stride x (consumer's input-tile extent of the consumer dim at level),
//
// the number of producer elements one consumer tile consumes. Pairs whose
// consumer dim is untiled at the level contribute their full producer bound
// (no real constraint). The consumer mapping must lower against (consumer
// workload, arch).
func FuseTileOf(b workload.EdgeBinding, a *arch.Arch, cm *mapping.Mapping, level int) (map[string]int, error) {
	if level < 1 {
		level = 1
	}
	slots := mapping.Slots(a)
	dn, err := cm.Dense(b.Cons.Work, a, slots)
	if err != nil {
		return nil, fmt.Errorf("mapspace: fuse tile of %s->%s: %w", b.Prod.Name, b.Cons.Name, err)
	}
	si := mapping.FirstSlotOfLevel(slots, level)
	out := make(map[string]int, len(b.Pairs))
	for _, pr := range b.Pairs {
		adv := pr.Stride * dn.CumAt(int(pr.ConsID), si)
		if bp := b.Prod.Work.Bound(pr.ProdDim); adv > bp {
			adv = bp
		}
		out[pr.ProdDim] = adv
	}
	return out, nil
}
