package mapspace

import (
	"math/rand"
	"reflect"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workloads"
)

// TestSampleIntoMatchesSample pins the in-place sampler to the allocating
// one: with the same seed, both entry points must consume the rng
// identically and produce identical mapping sequences, so seeded searches
// stay reproducible whichever path they use.
func TestSampleIntoMatchesSample(t *testing.T) {
	w := workloads.ResNet50()[3].Work
	a := arch.EyerissLike(14, 12, 128)
	for _, kind := range Kinds {
		for _, bypass := range []bool{false, true} {
			cons := EyerissRowStationary(w)
			cons.ExploreBypass = bypass
			sp := New(w, a, kind, cons)

			rngA := rand.New(rand.NewSource(99))
			rngB := rand.New(rand.NewSource(99))
			smp := sp.NewSampler()
			m := &mapping.Mapping{}
			for i := 0; i < 200; i++ {
				want := sp.Sample(rngA)
				smp.SampleInto(rngB, m)
				if !reflect.DeepEqual(m.Factors, want.Factors) {
					t.Fatalf("kind %v bypass %v draw %d: factors diverge\n got %v\nwant %v",
						kind, bypass, i, m.Factors, want.Factors)
				}
				if !reflect.DeepEqual(m.Perms, want.Perms) {
					t.Fatalf("kind %v bypass %v draw %d: perms diverge", kind, bypass, i)
				}
				if !reflect.DeepEqual(m.Keep, want.Keep) {
					t.Fatalf("kind %v bypass %v draw %d: keep diverges", kind, bypass, i)
				}
			}
		}
	}
}

// TestSampleIntoPreLowers checks the sampler emits the dense form: after
// SampleInto, the mapping's lowering is already memoized and valid.
func TestSampleIntoPreLowers(t *testing.T) {
	w := workloads.ResNet50()[1].Work
	a := arch.SimbaLike(15, 4, 4)
	sp := New(w, a, RubyS, SimbaDataflow(w))
	smp := sp.NewSampler()
	rng := rand.New(rand.NewSource(5))
	m := &mapping.Mapping{}
	for i := 0; i < 50; i++ {
		smp.SampleInto(rng, m)
		dm, err := m.Dense(w, a, sp.Slots())
		if err != nil {
			t.Fatalf("draw %d: sampled mapping failed to lower: %v", i, err)
		}
		if dm.NDims != len(w.Dims) || dm.NSlots != len(sp.Slots()) {
			t.Fatalf("draw %d: dense shape %dx%d", i, dm.NDims, dm.NSlots)
		}
	}
}
