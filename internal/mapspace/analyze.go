package mapspace

import (
	"math/big"
)

// TotalSizeUpperBound returns an upper bound on the full mapspace size
// including loop orders: the tiling-chain count times the number of
// per-level permutations. It is an upper bound because permutations of
// single-trip loops are indistinguishable; the tiling count itself is exact.
func (s *Space) TotalSizeUpperBound() *big.Int {
	total := new(big.Int).SetUint64(s.TotalChainCount())
	if s.Cons.FixedPerms {
		return total
	}
	permsPerLevel := new(big.Int).MulRange(1, int64(len(s.Work.Dims))) // dims!
	for li := 0; li < len(s.Arch.Levels); li++ {
		total.Mul(total, permsPerLevel)
	}
	return total
}
