package mapspace

import "ruby/internal/workload"

// EyerissRowStationary returns the constraint set used for the Eyeriss-like
// baseline (Section IV-A: "we constrain the mapspace to generate mappings
// that conform to the data access patterns amenable to row-stationary
// dataflows"). For convolutions, filter rows/columns and input channels
// spread down the array's Y axis while output columns and output channels
// replicate along X — the allocation style of Fig. 9. GEMMs (dense layers)
// map the reduction dimension on Y and the output dimensions on X.
//
// With AlexNet layer 2 on a 14x12 array these constraints reproduce the
// paper's utilization numbers exactly: PFM reaches Q:3 x M:4 = 12 of 14
// columns and R:5 x C:2 = 10 of 12 rows (71%), while Ruby-S reaches
// Q:7 x M:2 = 14 columns and the same 10 rows (85%).
func EyerissRowStationary(w *workload.Workload) Constraints {
	if isConv(w) {
		return Constraints{
			SpatialX: []string{"Q", "M"},
			SpatialY: []string{"R", "S", "C"},
		}
	}
	return Constraints{
		SpatialX: []string{"M", "N"},
		SpatialY: []string{"K"},
	}
}

// EyerissStrictRowStationary returns the tighter row-stationary constraint
// set matching the paper's Fig. 9 allocation arithmetic: filter rows are
// pinned to the array's rows and output columns to the array's columns
// (Eyeriss's physical dataflow). Under these constraints perfect
// factorization of AlexNet layer 2 tops out at Q:3 x M:4 = 12 of 14 columns
// and R:5 x C:2 = 10 of 12 rows — the paper's 71% — while Ruby-S reaches
// Q:7 x M:2 = 14 columns (85%). The milder EyerissRowStationary is the
// default elsewhere because pinning Q and R cripples pointwise layers.
func EyerissStrictRowStationary(w *workload.Workload) Constraints {
	if isConv(w) {
		return Constraints{
			SpatialX:        []string{"Q", "M"},
			SpatialY:        []string{"R", "C"},
			RequireSpatialX: []string{"Q"},
			RequireSpatialY: []string{"R"},
		}
	}
	return EyerissRowStationary(w)
}

// SimbaDataflow returns the constraint set for the Simba-like architecture
// (Section IV-C: "PE-level parallelism across the input channel (C) and
// output channel (M) dimensions"). Both the PE fanout and the vector-MAC
// lanes carry channel dimensions.
func SimbaDataflow(w *workload.Workload) Constraints {
	if isConv(w) {
		return Constraints{
			SpatialX: []string{"C", "M"},
			SpatialY: []string{"C", "M"},
		}
	}
	return Constraints{
		SpatialX: []string{"M", "K"},
		SpatialY: []string{"M", "K"},
	}
}

// SystolicDataflow returns the constraint set for the TPU-like systolic
// preset: the reduction dimension flows down the array's rows (Y) while
// output columns spread across X — output-stationary accumulation for GEMMs,
// with input channels down Y for convolutions.
func SystolicDataflow(w *workload.Workload) Constraints {
	if isConv(w) {
		return Constraints{
			SpatialX: []string{"M"},
			SpatialY: []string{"C", "R", "S"},
		}
	}
	return Constraints{
		SpatialX: []string{"N", "M"},
		SpatialY: []string{"K"},
	}
}

func isConv(w *workload.Workload) bool {
	for _, d := range w.Dims {
		if d.Name == "R" {
			return true
		}
	}
	return false
}
