package mapspace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// moveFixture is a bypass-exploring Eyeriss conv space, so all three move
// kinds (chain, perm, keep) are proposable.
func moveFixture() (*Space, *workload.Workload, *arch.Arch) {
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 16, C: 16, P: 14, Q: 14, R: 3, S: 3})
	a := arch.EyerissLike(14, 12, 128)
	return New(w, a, RubyS, Constraints{ExploreBypass: true}), w, a
}

// sampleLowered draws a mapping and forces its dense lowering into the memo,
// the state Move.Apply patches in place.
func sampleLowered(t *testing.T, sp *Space, rng *rand.Rand) *mapping.Mapping {
	t.Helper()
	for i := 0; i < 1000; i++ {
		m := sp.Sample(rng)
		if _, err := m.Dense(sp.Work, sp.Arch, sp.slots); err == nil {
			return m
		}
	}
	t.Fatal("no lowerable sample")
	return nil
}

// requireMoveDenseMatchesFresh checks that the in-place-patched lowering and
// memoized key agree with a from-scratch lowering of the same mapping state.
func requireMoveDenseMatchesFresh(t *testing.T, sp *Space, m *mapping.Mapping) {
	t.Helper()
	dn := m.UpdatableDense(sp.Work, sp.Arch, sp.slots)
	if dn == nil {
		t.Fatal("dense memo dropped by a patching move")
	}
	c := m.Clone()
	fresh, err := c.Dense(sp.Work, sp.Arch, sp.slots)
	if err != nil {
		t.Fatalf("fresh lowering of moved mapping: %v", err)
	}
	if dn.NDims != fresh.NDims || dn.NSlots != fresh.NSlots ||
		!reflect.DeepEqual(dn.Cum, fresh.Cum) || !reflect.DeepEqual(dn.Perm, fresh.Perm) {
		t.Fatal("patched dense lowering diverged from fresh densify")
	}
	if len(dn.KeepMask) != len(fresh.KeepMask) {
		t.Fatalf("KeepMask = %v, fresh %v", dn.KeepMask, fresh.KeepMask)
	}
	for i := range dn.KeepMask {
		if dn.KeepMask[i] != fresh.KeepMask[i] {
			t.Fatalf("KeepMask = %v, fresh %v", dn.KeepMask, fresh.KeepMask)
		}
	}
	if got, want := m.Key(sp.Work, sp.slots), c.Key(sp.Work, sp.slots); got != want {
		t.Fatalf("key after move = %q, clone key %q", got, want)
	}
}

// TestMoveApplyUndoRoundTrip pins Undo's contract: after Apply+Undo the
// mapping is restored exactly — canonical key, serialized form (including
// bypass-override nil-ness), and the in-place-patched dense lowering all
// match the pre-move state.
func TestMoveApplyUndoRoundTrip(t *testing.T) {
	sp, w, _ := moveFixture()
	rng := rand.New(rand.NewSource(7))
	m := sampleLowered(t, sp, rng)

	key0 := m.Key(w, sp.slots)
	enc0, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	keepNil0 := m.Keep == nil

	mu := sp.NewMutator()
	check := func(name string, mv *Move) {
		t.Helper()
		mv.Apply(m)
		mv.Undo(m)
		if got := m.Key(w, sp.slots); got != key0 {
			t.Errorf("%s: key after undo = %q, want %q", name, got, key0)
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(enc, enc0) {
			t.Errorf("%s: serialized form changed across apply+undo", name)
		}
		if (m.Keep == nil) != keepNil0 {
			t.Errorf("%s: Keep nil-ness not restored", name)
		}
		requireMoveDenseMatchesFresh(t, sp, m)
	}

	for li := range sp.Arch.Levels {
		check("perm", mu.ProposePerm(rng, li))
	}
	for di := range sp.dimNames {
		check("chain", mu.ProposeChainID(rng, di))
	}
	if len(mu.bypassLvls) == 0 {
		t.Fatal("fixture has no togglable bypass pairs")
	}
	for k := range mu.bypassLvls {
		check("keep", mu.ProposeKeep(mu.bypassLvls[k], mu.bypassRoles[k]))
	}
}

// TestMoveApplyPatchesDenseLikeFresh walks a long one-way move sequence (the
// genetic-mutation usage: applied moves are never undone) and periodically
// checks the patched lowering against a from-scratch one.
func TestMoveApplyPatchesDenseLikeFresh(t *testing.T) {
	sp, _, _ := moveFixture()
	rng := rand.New(rand.NewSource(11))
	m := sampleLowered(t, sp, rng)
	mu := sp.NewMutator()
	for i := 0; i < 300; i++ {
		mu.Propose(rng).Apply(m)
		if i%25 == 0 {
			requireMoveDenseMatchesFresh(t, sp, m)
		}
	}
	requireMoveDenseMatchesFresh(t, sp, m)
}

// TestMoveApplyWithoutDenseInvalidates covers the cold path: a mapping with
// no memoized lowering is invalidated wholesale and relowers correctly.
func TestMoveApplyWithoutDenseInvalidates(t *testing.T) {
	sp, _, _ := moveFixture()
	rng := rand.New(rand.NewSource(13))
	m := sp.Sample(rng)
	m.Invalidate()
	mu := sp.NewMutator()
	mv := mu.Propose(rng)
	mv.Apply(m)
	if m.UpdatableDense(sp.Work, sp.Arch, sp.slots) != nil {
		t.Fatal("stale dense memo survived a move on an unlowered mapping")
	}
	if _, err := m.Dense(sp.Work, sp.Arch, sp.slots); err != nil {
		t.Fatalf("relowering after cold-path move: %v", err)
	}
	requireMoveDenseMatchesFresh(t, sp, m)
}

func TestMoveDoubleApplyPanics(t *testing.T) {
	sp, _, _ := moveFixture()
	rng := rand.New(rand.NewSource(17))
	m := sampleLowered(t, sp, rng)
	mv := sp.NewMutator().Propose(rng)
	mv.Apply(m)
	defer func() {
		if recover() == nil {
			t.Fatal("second Apply did not panic")
		}
	}()
	mv.Apply(m)
}

func TestMoveUndoWithoutApplyPanics(t *testing.T) {
	sp, _, _ := moveFixture()
	rng := rand.New(rand.NewSource(19))
	m := sampleLowered(t, sp, rng)
	mv := sp.NewMutator().Propose(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Undo without Apply did not panic")
		}
	}()
	mv.Undo(m)
}
