package mapspace

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func TestExploreBypassSamplesVariants(t *testing.T) {
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 16, C: 16, P: 14, Q: 14, R: 3, S: 3})
	a := arch.EyerissLike(14, 12, 128)
	s := New(w, a, RubyS, Constraints{ExploreBypass: true})
	ev := nest.MustEvaluator(w, a)
	rng := rand.New(rand.NewSource(1))
	bypassed, kept, valid := 0, 0, 0
	for i := 0; i < 400; i++ {
		m := s.Sample(rng)
		if m.Keep != nil && m.Keep[1] != nil &&
			(!m.Keep[1][workload.Input] || !m.Keep[1][workload.Output]) {
			bypassed++
		} else {
			kept++
		}
		if c := ev.Evaluate(m); c.Valid {
			valid++
		}
	}
	if bypassed == 0 {
		t.Error("bypass never sampled")
	}
	if kept == 0 {
		t.Error("default residency never sampled")
	}
	if valid == 0 {
		t.Error("no valid mapping among bypass-exploring samples")
	}
}

func TestExploreBypassNeverAddsRoles(t *testing.T) {
	// The GLB bypasses weights architecturally; exploration must not undo
	// that.
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 8, C: 8, P: 7, Q: 7, R: 3, S: 3})
	a := arch.EyerissLike(14, 12, 128)
	s := New(w, a, Ruby, Constraints{ExploreBypass: true})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		mm := s.Sample(rng)
		kept := mm.KeptRoles(a, 1)
		if kept[workload.Weight] {
			t.Fatal("bypass exploration re-enabled weights at the GLB")
		}
	}
}

func TestExploreBypassOffByDefault(t *testing.T) {
	w := workload.MustVector1D("d", 30)
	a := arch.EyerissLike(14, 12, 128)
	s := New(w, a, RubyS, Constraints{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if m := s.Sample(rng); m.Keep != nil {
			t.Fatal("bypass sampled without ExploreBypass")
		}
	}
}

func TestExploreBypassTwoLevelArchNoop(t *testing.T) {
	w := workload.MustVector1D("d", 30)
	a := arch.ToyGLB(6, 512)
	s := New(w, a, RubyS, Constraints{ExploreBypass: true})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		if m := s.Sample(rng); m.Keep != nil {
			t.Fatal("bypass sampled on a two-level hierarchy")
		}
	}
}
