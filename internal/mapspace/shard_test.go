package mapspace

import (
	"fmt"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/workload"
)

// shardSpace is a multi-dimensional space small enough to enumerate fully.
func shardSpace(t *testing.T) *Space {
	t.Helper()
	w := workload.MustMatmul("mm", 12, 6, 4)
	a := arch.ToyGLB(6, 512)
	return New(w, a, RubyS, Constraints{FixedPerms: true})
}

// chainKey renders a mapping's factor chains deterministically (declaration
// dimension order) for comparison across enumerators.
func chainKey(s *Space, fs map[string][]int) string {
	key := ""
	for _, d := range s.Work.Dims {
		key += fmt.Sprintf("%s=%v;", d.Name, fs[d.Name])
	}
	return key
}

func TestShardLeadingPartition(t *testing.T) {
	s := shardSpace(t)
	total := int(s.ChainCount(s.LeadingDim()))
	if total < 4 {
		t.Fatalf("toy space too small to shard: %d leading chains", total)
	}
	for _, n := range []int{1, 2, 3, total, total + 5, -1} {
		ranges := s.ShardLeading(n)
		want := n
		if want < 1 {
			want = 1
		}
		if want > total {
			want = total
		}
		if len(ranges) != want {
			t.Fatalf("ShardLeading(%d): %d ranges, want %d", n, len(ranges), want)
		}
		lo := 0
		for i, r := range ranges {
			if r.Lo != lo {
				t.Fatalf("ShardLeading(%d): range %d starts at %d, want %d", n, i, r.Lo, lo)
			}
			size := r.Hi - r.Lo
			if size < total/want || size > total/want+1 {
				t.Fatalf("ShardLeading(%d): range %d size %d not balanced", n, i, size)
			}
			lo = r.Hi
		}
		if lo != total {
			t.Fatalf("ShardLeading(%d): ranges end at %d, want %d", n, lo, total)
		}
	}
}

func TestRestrictLeadingUnionCoversSpace(t *testing.T) {
	s := shardSpace(t)

	var full []string
	en := s.NewEnumerator()
	for m := en.Next(); m != nil; m = en.Next() {
		full = append(full, chainKey(s, m.Factors))
	}

	for _, n := range []int{2, 3, 5} {
		var sharded []string
		for _, r := range s.ShardLeading(n) {
			se := s.NewEnumerator()
			if err := se.RestrictLeading(r.Lo, r.Hi); err != nil {
				t.Fatalf("RestrictLeading(%d, %d): %v", r.Lo, r.Hi, err)
			}
			for m := se.Next(); m != nil; m = se.Next() {
				sharded = append(sharded, chainKey(s, m.Factors))
			}
		}
		if len(sharded) != len(full) {
			t.Fatalf("%d shards: %d mappings, full scan has %d", n, len(sharded), len(full))
		}
		// Contiguous leading-prefix shards preserve the full scan's order.
		for i := range full {
			if sharded[i] != full[i] {
				t.Fatalf("%d shards: mapping %d = %q, full scan has %q", n, i, sharded[i], full[i])
			}
		}
	}
}

func TestRestrictLeadingValidation(t *testing.T) {
	s := shardSpace(t)
	n := int(s.ChainCount(s.LeadingDim()))
	en := s.NewEnumerator()
	for _, bad := range [][2]int{{-1, 2}, {0, n + 1}, {3, 3}, {4, 2}} {
		if err := en.RestrictLeading(bad[0], bad[1]); err == nil {
			t.Errorf("RestrictLeading(%d, %d): want error", bad[0], bad[1])
		}
	}
	if err := en.RestrictLeading(1, 3); err != nil {
		t.Fatalf("RestrictLeading(1, 3): %v", err)
	}
	// SetIndex must reject positions outside the restricted window.
	idx := en.Index()
	idx[0] = 0
	if err := en.SetIndex(idx, false); err == nil {
		t.Error("SetIndex below the restricted range: want error")
	}
	idx[0] = 3
	if err := en.SetIndex(idx, false); err == nil {
		t.Error("SetIndex at the restricted range's end: want error")
	}
}

func TestRestrictLeadingCheckpointResume(t *testing.T) {
	s := shardSpace(t)
	ranges := s.ShardLeading(3)
	r := ranges[1]

	var want []string
	en := s.NewEnumerator()
	if err := en.RestrictLeading(r.Lo, r.Hi); err != nil {
		t.Fatal(err)
	}
	for m := en.Next(); m != nil; m = en.Next() {
		want = append(want, chainKey(s, m.Factors))
	}
	if len(want) < 4 {
		t.Fatalf("shard too small: %d mappings", len(want))
	}

	// Scan half the shard, snapshot the odometer, resume on a fresh
	// enumerator, and check the tail matches the uninterrupted scan.
	first := s.NewEnumerator()
	if err := first.RestrictLeading(r.Lo, r.Hi); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < len(want)/2; i++ {
		got = append(got, chainKey(s, first.Next().Factors))
	}
	idx, done := first.Index(), first.Done()

	resumed := s.NewEnumerator()
	if err := resumed.RestrictLeading(r.Lo, r.Hi); err != nil {
		t.Fatal(err)
	}
	if err := resumed.SetIndex(idx, done); err != nil {
		t.Fatalf("SetIndex mid-shard: %v", err)
	}
	for m := resumed.Next(); m != nil; m = resumed.Next() {
		got = append(got, chainKey(s, m.Factors))
	}
	if len(got) != len(want) {
		t.Fatalf("resumed shard scan: %d mappings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed shard scan diverges at %d: %q != %q", i, got[i], want[i])
		}
	}
}
