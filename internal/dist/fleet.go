package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"ruby/internal/obs"
	"ruby/internal/search"
)

// Fleet drives one Coordinator against rubyserve workers over the /v1 jobs
// API. The loop is a single goroutine: each tick expires stale leases,
// hands pending shards to idle workers, polls running jobs (the poll doubles
// as the lease heartbeat and collects worker-side checkpoints), re-queues
// shards of unreachable workers, and periodically persists the coordinator
// state. Because every shard's result is deterministic, the fleet's merged
// outcome does not depend on which worker ran what, or how often shards
// were re-queued.
type Fleet struct {
	Coord *Coordinator
	// Spec is the problem and base search configuration shipped with every
	// shard.
	Spec *JobSpec
	// Workers lists the worker base URLs.
	Workers []string
	// HTTP is the shared transport (nil = http.DefaultClient).
	HTTP *http.Client
	// PollInterval is the tick period (default 200ms). Keep it well below
	// the coordinator's lease TTL: polls are the heartbeat.
	PollInterval time.Duration
	// StatePath, when set, persists the coordinator state (checkpoint kind
	// "shards") every tick, so an interrupted run resumes with -resume.
	StatePath string
	// MaxRequeues aborts the run when any single shard has been re-queued
	// this many times (default 8) — a shard that fails on every worker is
	// a deterministic failure, not a fleet problem.
	MaxRequeues int
	// GiveUpAfter aborts the run when every worker has been continuously
	// unreachable for this long (default 30s; 0 keeps the default).
	GiveUpAfter time.Duration
	// Log receives fleet events (nil = slog.Default()).
	Log *slog.Logger

	// mu guards the live worker table, which the run loop mutates and the
	// ruby_fleet_workers gauge closure reads at exposition time.
	//ruby:guards workers
	mu      sync.Mutex
	workers []*fleetWorker
}

// Worker states tracked by the fleet (the ruby_fleet_workers gauge).
const (
	workerIdle = "idle"
	workerBusy = "busy"
	workerDead = "dead"
)

// fleetWorker is the fleet's view of one worker.
type fleetWorker struct {
	name   string
	client *Client
	state  string
	shard  int    // leased shard while busy
	jobID  string // worker-local job while busy
}

func (f *Fleet) poll() time.Duration {
	if f.PollInterval > 0 {
		return f.PollInterval
	}
	return 200 * time.Millisecond
}

func (f *Fleet) maxRequeues() int {
	if f.MaxRequeues > 0 {
		return f.MaxRequeues
	}
	return 8
}

func (f *Fleet) giveUpAfter() time.Duration {
	if f.GiveUpAfter > 0 {
		return f.GiveUpAfter
	}
	return 30 * time.Second
}

func (f *Fleet) log() *slog.Logger {
	if f.Log != nil {
		return f.Log
	}
	return slog.Default()
}

func (f *Fleet) workerState(w *fleetWorker) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return w.state
}

func (f *Fleet) setWorkerState(w *fleetWorker, state string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w.state = state
}

// RegisterWorkers exposes the ruby_fleet_workers{state} gauge for a running
// fleet. Call before Run; the gauge reads the fleet's live worker table.
func (f *Fleet) RegisterWorkers(reg *obs.Registry) {
	reg.GaugeVec("ruby_fleet_workers", "Fleet workers by state.", "state", func() []obs.Sample {
		f.mu.Lock()
		counts := map[string]int{workerIdle: 0, workerBusy: 0, workerDead: 0}
		for _, w := range f.workers {
			counts[w.state]++
		}
		f.mu.Unlock()
		states := []string{workerBusy, workerDead, workerIdle} // fixed order for the exposition
		out := make([]obs.Sample, 0, len(states))
		for _, s := range states {
			out = append(out, obs.Sample{LabelValue: s, Value: float64(counts[s])})
		}
		return out
	})
}

// Run coordinates the plan to completion and returns the merged result. On
// context cancellation it persists the coordinator state (when StatePath is
// set) and returns the merge-so-far with the context's error, so a resumed
// run picks up the finished shards.
func (f *Fleet) Run(ctx context.Context) (*Merged, error) {
	ctx, span := obs.StartSpan(ctx, "fleet:run")
	defer span.End()

	if len(f.Workers) == 0 {
		return nil, fmt.Errorf("dist: fleet has no workers")
	}
	obj, err := ParseObjective(f.Spec.Objective)
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	f.workers = f.workers[:0]
	for _, base := range f.Workers {
		f.workers = append(f.workers, &fleetWorker{
			name:   base,
			client: &Client{Base: base, HTTP: f.HTTP},
			state:  workerIdle,
		})
	}
	workers := f.workers
	f.mu.Unlock()

	var allDeadSince time.Time
	for !f.Coord.Done() {
		if err := ctx.Err(); err != nil {
			f.persist()
			return f.Coord.Merged(), err
		}
		f.Coord.ExpireLeases()

		alive := false
		for _, w := range workers {
			f.tickWorker(ctx, w, obj)
			if f.workerState(w) != workerDead {
				alive = true
			}
		}

		// Poison-shard and dead-fleet guards: without them a shard that
		// fails deterministically, or a fleet that never comes back, would
		// spin forever.
		for _, sv := range f.Coord.Shards() {
			if sv.Status != ShardDone && sv.Requeues >= f.maxRequeues() {
				f.persist()
				return f.Coord.Merged(), fmt.Errorf("dist: shard %d re-queued %d times; giving up", sv.Shard.Index, sv.Requeues)
			}
		}
		switch {
		case alive:
			allDeadSince = time.Time{}
		case allDeadSince.IsZero():
			allDeadSince = time.Now()
		case time.Since(allDeadSince) > f.giveUpAfter():
			f.persist()
			return f.Coord.Merged(), fmt.Errorf("dist: all %d workers unreachable for %s; giving up", len(workers), f.giveUpAfter())
		}

		f.persist()
		select {
		case <-ctx.Done():
		case <-time.After(f.poll()):
		}
	}
	f.persist()
	return f.Coord.Merged(), nil
}

// tickWorker advances one worker's state machine by one tick.
func (f *Fleet) tickWorker(ctx context.Context, w *fleetWorker, obj search.Objective) {
	switch f.workerState(w) {
	case workerDead:
		if w.client.Healthz(ctx) == nil {
			f.setWorkerState(w, workerIdle)
			f.log().Info("dist: worker revived", "worker", w.name)
		}

	case workerIdle:
		sh, ckpt, ok := f.Coord.Lease(w.name)
		if !ok {
			return
		}
		id, err := w.client.SubmitShard(ctx, f.Spec, sh, ckpt)
		if err != nil {
			f.Coord.Fail(sh.Index, w.name)
			f.setWorkerState(w, workerDead)
			obs.Event(ctx, "shard:requeue")
			f.log().Warn("dist: shard submit failed; worker marked dead", "worker", w.name, "shard", sh.Index, "err", err)
			return
		}
		w.shard, w.jobID = sh.Index, id
		f.setWorkerState(w, workerBusy)
		obs.Event(ctx, "shard:lease")

	case workerBusy:
		st, err := w.client.Job(ctx, w.jobID)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			f.Coord.Fail(w.shard, w.name)
			f.setWorkerState(w, workerDead)
			obs.Event(ctx, "shard:requeue")
			f.log().Warn("dist: worker lost; shard re-queued", "worker", w.name, "shard", w.shard, "err", err)
			return
		}
		switch st.Status {
		case "done":
			res := shardResultOf(st.Result, obj)
			f.Coord.Complete(w.shard, w.name, res)
			f.setWorkerState(w, workerIdle)
			obs.Event(ctx, "shard:complete")
		case "failed":
			// The worker is healthy; the job itself failed. Re-queue (the
			// poison-shard cap in Run bounds deterministic failures).
			f.Coord.Fail(w.shard, w.name)
			f.setWorkerState(w, workerIdle)
			obs.Event(ctx, "shard:requeue")
			f.log().Warn("dist: shard job failed; re-queued", "worker", w.name, "shard", w.shard, "err", st.Error)
		default: // running or interrupted (worker restarting the job)
			f.Coord.Heartbeat(w.shard, w.name)
			if ckpt, err := w.client.JobCheckpoint(ctx, w.jobID); err == nil && len(ckpt) > 0 {
				f.Coord.SaveCheckpoint(w.shard, w.name, ckpt)
			}
		}
	}
}

// persist writes the coordinator state when a StatePath is configured.
func (f *Fleet) persist() {
	if f.StatePath == "" {
		return
	}
	if err := f.Coord.SaveState(f.StatePath, f.Spec); err != nil {
		f.log().Warn("dist: persisting coordinator state failed", "path", f.StatePath, "err", err)
	}
}

// shardResultOf converts a worker job result into a shard report. A done
// job without a mapping (JSON null) is a shard whose range holds no valid
// mapping — a result, not an error.
func shardResultOf(r *JobResult, obj search.Objective) ShardResult {
	if r == nil {
		return ShardResult{}
	}
	out := ShardResult{Evaluated: r.Evaluated, Valid: r.Valid}
	if len(r.Mapping) > 0 && string(r.Mapping) != "null" {
		out.Mapping = r.Mapping
		out.Objective = obj.Value(&r.Cost)
	}
	return out
}
