package dist

import (
	"encoding/json"
	"fmt"
	"time"

	"ruby/internal/checkpoint"
)

// ShardSnapshot is one shard's persisted coordination state. Leases do not
// persist: a lease names a live worker conversation, so restoring a state
// file re-queues anything that was leased (the shard contract makes the
// re-run converge to the identical result).
type ShardSnapshot struct {
	Status     string          `json:"status"` // ShardPending or ShardDone
	Requeues   int             `json:"requeues,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	Result     *ShardResult    `json:"result,omitempty"`
}

// PlanState is the serializable whole of a coordination run (checkpoint
// kind "shards"): the plan, the problem spec it runs over, and per-shard
// progress. rubycoord -resume reloads it and continues with only the
// unfinished shards.
//
//ruby:serialstable
type PlanState struct {
	Plan  *Plan           `json:"plan"`
	Spec  *JobSpec        `json:"spec,omitempty"`
	Shard []ShardSnapshot `json:"shards"`
}

// State snapshots the coordinator. Safe to call at any time; in-flight
// leases appear as pending shards carrying their latest collected
// checkpoint.
func (c *Coordinator) State() *PlanState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &PlanState{Plan: c.plan, Shard: make([]ShardSnapshot, len(c.shards))}
	for i, sh := range c.shards {
		snap := ShardSnapshot{Status: sh.status, Requeues: sh.requeues, Result: sh.result}
		if snap.Status == ShardLeased {
			snap.Status = ShardPending
		}
		if len(sh.checkpoint) > 0 {
			snap.Checkpoint = append(json.RawMessage(nil), sh.checkpoint...)
		}
		st.Shard[i] = snap
	}
	return st
}

// RestoreCoordinator rebuilds a coordinator from a persisted state.
// Finished shards keep their results; everything else starts pending with
// its held checkpoint. leaseTTL and now follow NewCoordinator's defaults.
//
//ruby:allow lockflow -- the coordinator is not yet shared; no goroutine can see it before return
func RestoreCoordinator(st *PlanState, leaseTTL time.Duration, now func() time.Time) (*Coordinator, error) {
	if st.Plan == nil {
		return nil, fmt.Errorf("dist: plan state lacks a plan")
	}
	if len(st.Shard) != len(st.Plan.Shards) {
		return nil, fmt.Errorf("dist: plan state has %d shard snapshots for %d shards", len(st.Shard), len(st.Plan.Shards))
	}
	c := NewCoordinator(st.Plan, leaseTTL, now)
	for i, snap := range st.Shard {
		sh := c.shards[i]
		switch snap.Status {
		case ShardDone:
			if snap.Result == nil {
				return nil, fmt.Errorf("dist: shard %d is done without a result", i)
			}
			sh.status = ShardDone
			r := *snap.Result
			r.Mapping = compactJSON(r.Mapping) // state files re-indent raw JSON
			sh.result = &r
			c.completed++
			c.evals += uint64(snap.Result.Evaluated)
		case ShardPending, ShardLeased, "":
			sh.status = ShardPending
		default:
			return nil, fmt.Errorf("dist: shard %d has unknown status %q", i, snap.Status)
		}
		sh.requeues = snap.Requeues
		if len(snap.Checkpoint) > 0 {
			sh.checkpoint = append(json.RawMessage(nil), snap.Checkpoint...)
		}
	}
	return c, nil
}

// SaveState persists the coordinator's state atomically (checkpoint kind
// "shards"), embedding the problem spec so a resume needs only the file.
func (c *Coordinator) SaveState(path string, spec *JobSpec) error {
	st := c.State()
	st.Spec = spec
	return checkpoint.Save(path, checkpoint.KindShards, st)
}

// LoadState reads a persisted coordination state.
func LoadState(path string) (*PlanState, error) {
	var st PlanState
	if err := checkpoint.Load(path, checkpoint.KindShards, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
