package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// testSpec is a small problem every dist test shares: a 12x6x4 matmul on a
// two-level toy architecture, small enough for exhaustive scans in tests.
func testSpec(algo string) *JobSpec {
	return &JobSpec{
		Workload: json.RawMessage(`{"name": "mm", "type": "matmul", "matmul": {"m": 12, "n": 6, "k": 4}}`),
		Arch: json.RawMessage(`{
		  "name": "toy",
		  "levels": [
		    {"name": "DRAM"},
		    {"name": "GLB", "capacity_words": 512, "fanout": {"x": 6, "multicast": true}}
		  ]}`),
		Mapspace: "ruby-s",
		Search:   algo,
	}
}

func TestBuildPlanChain(t *testing.T) {
	spec := testSpec("exhaustive")
	_, sp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(sp, "exhaustive", 7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanChain || p.LeadDim != sp.LeadingDim() {
		t.Fatalf("plan kind %q lead %q, want chain over %q", p.Kind, p.LeadDim, sp.LeadingDim())
	}
	if err := p.Validate(sp); err != nil {
		t.Fatalf("built plan fails validation: %v", err)
	}
	// Determinism: the plan is a pure function of its inputs.
	p2, err := BuildPlan(sp, "exhaustive", 7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("BuildPlan is not deterministic:\n%+v\n%+v", p, p2)
	}
	// Oversharding clamps to one chain per shard rather than emitting empty
	// shards.
	total := int(sp.ChainCount(sp.LeadingDim()))
	pBig, err := BuildPlan(sp, "exhaustive", 7, total+5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pBig.Shards) != total {
		t.Errorf("overshard produced %d shards for %d chains", len(pBig.Shards), total)
	}
	if err := pBig.Validate(sp); err != nil {
		t.Errorf("oversharded plan fails validation: %v", err)
	}
}

func TestBuildPlanSubstream(t *testing.T) {
	spec := testSpec("random")
	_, sp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(sp, "random", 42, 4, 1003)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanSubstream {
		t.Fatalf("kind = %q, want substream", p.Kind)
	}
	if err := p.Validate(sp); err != nil {
		t.Fatalf("built plan fails validation: %v", err)
	}
	var total int64
	seeds := map[int64]bool{}
	for _, sh := range p.Shards {
		total += sh.MaxEvaluations
		seeds[sh.Seed] = true
	}
	if total != 1003 {
		t.Errorf("shard budgets sum to %d, want 1003", total)
	}
	if len(seeds) != len(p.Shards) {
		t.Errorf("per-shard seeds collide: %d distinct of %d", len(seeds), len(p.Shards))
	}

	if _, err := BuildPlan(sp, "random", 42, 4, 0); err == nil {
		t.Error("substream plan without a budget accepted")
	}
	if _, err := BuildPlan(sp, "anneal", 42, 4, 100); err == nil {
		t.Error("non-resumable algorithm accepted")
	}
	// More shards than budget: clamp, never zero-budget shards.
	pTiny, err := BuildPlan(sp, "random", 42, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pTiny.Shards) != 3 {
		t.Errorf("budget-3 plan has %d shards, want 3", len(pTiny.Shards))
	}
}

func TestPlanValidateRejectsMismatch(t *testing.T) {
	spec := testSpec("exhaustive")
	_, sp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(sp, "exhaustive", 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	broken := *p
	broken.Shards = append([]Shard(nil), p.Shards...)
	broken.Shards[1].Chain.Lo++ // gap in the partition
	if err := broken.Validate(sp); err == nil {
		t.Error("gapped chain partition accepted")
	}
	broken2 := *p
	broken2.LeadDim = "nope"
	if err := broken2.Validate(sp); err == nil {
		t.Error("wrong leading dimension accepted")
	}
}

// fakeClock is a manually advanced clock for lease tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testPlan(t *testing.T, algo string, n int, budget int64) *Plan {
	t.Helper()
	_, sp, err := testSpec(algo).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(sp, algo, 7, n, budget)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCoordinator(testPlan(t, "exhaustive", 3, 0), 10*time.Second, clk.now)

	sh, ckpt, ok := c.Lease("w1")
	if !ok || sh.Index != 0 || ckpt != nil {
		t.Fatalf("first lease = %+v, %v, %v", sh, ckpt, ok)
	}
	if !c.Heartbeat(0, "w1") {
		t.Error("heartbeat by the holder rejected")
	}
	if c.Heartbeat(0, "w2") {
		t.Error("heartbeat by a non-holder renewed the lease")
	}

	// A renewed lease survives the original TTL window...
	clk.advance(8 * time.Second)
	c.Heartbeat(0, "w1")
	clk.advance(8 * time.Second)
	if n := c.ExpireLeases(); n != 0 {
		t.Fatalf("renewed lease expired (%d)", n)
	}
	// ...but lapses once the heartbeats stop.
	clk.advance(11 * time.Second)
	if n := c.ExpireLeases(); n != 1 {
		t.Fatalf("lapsed lease not expired (%d)", n)
	}
	sv, err := c.Shard(0)
	if err != nil || sv.Status != ShardPending || sv.Requeues != 1 {
		t.Fatalf("expired shard = %+v, %v", sv, err)
	}

	// Checkpoints stick only for the current holder.
	sh2, _, _ := c.Lease("w2")
	if sh2.Index != 0 {
		t.Fatalf("re-queued shard not re-leased first, got %d", sh2.Index)
	}
	c.SaveCheckpoint(0, "w1", json.RawMessage(`{"stale": true}`)) // stale holder
	c.SaveCheckpoint(0, "w2", json.RawMessage(`{"fresh": true}`))
	c.Fail(0, "w2")
	_, ckpt, _ = c.Lease("w3")
	if string(ckpt) != `{"fresh": true}` {
		t.Errorf("re-lease carried checkpoint %s", ckpt)
	}
}

// TestCompleteIdempotentAfterRequeue is the worker-dies-after-commit case: a
// worker finishes its shard (the search committed its last evaluation) but
// the coordinator never hears the report and re-queues the shard. When the
// replacement reports — and the original's report later straggles in — the
// shard's evaluations are counted exactly once and the incumbent survives.
func TestCompleteIdempotentAfterRequeue(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCoordinator(testPlan(t, "exhaustive", 2, 0), 10*time.Second, clk.now)

	res := ShardResult{Mapping: json.RawMessage(`{"m": 1}`), Objective: 2.5, Evaluated: 40, Valid: 30}

	// w1 takes shard 0, finishes it, but its report is lost: the lease
	// lapses and the shard is re-queued to w2.
	c.Lease("w1")
	clk.advance(11 * time.Second)
	c.ExpireLeases()
	sh, _, ok := c.Lease("w2")
	if !ok || sh.Index != 0 {
		t.Fatalf("re-queued shard went to %d, %v", sh.Index, ok)
	}

	// The shard contract makes w2's report identical to w1's. First report
	// wins — here w2 — and w1's straggler is dropped.
	if !c.Complete(0, "w2", res) {
		t.Fatal("current holder's report rejected")
	}
	if c.Complete(0, "w1", res) {
		t.Error("duplicate straggler report accepted")
	}

	m := c.Merged()
	if m.Evaluated != 40 || m.Valid != 30 {
		t.Errorf("double-counted: evaluated %d valid %d, want 40/30", m.Evaluated, m.Valid)
	}
	if string(m.Best) != `{"m":1}` || m.BestShard != 0 {
		t.Errorf("incumbent lost: %s from shard %d", m.Best, m.BestShard)
	}

	// The reverse order — the original holder reports before the
	// replacement — must also count once.
	c2 := NewCoordinator(testPlan(t, "exhaustive", 2, 0), 10*time.Second, clk.now)
	c2.Lease("w1")
	clk.advance(11 * time.Second)
	c2.ExpireLeases()
	c2.Lease("w2")
	if !c2.Complete(0, "w1", res) { // stale holder, shard not done: accepted
		t.Fatal("stale holder's first report rejected")
	}
	if c2.Complete(0, "w2", res) {
		t.Error("replacement's duplicate accepted")
	}
	if m := c2.Merged(); m.Evaluated != 40 {
		t.Errorf("reverse order double-counted: %d", m.Evaluated)
	}
}

func TestMergedPrefersLowestShardOnTie(t *testing.T) {
	c := NewCoordinator(testPlan(t, "exhaustive", 3, 0), 0, nil)
	c.Complete(1, "w", ShardResult{Mapping: json.RawMessage(`{"b": 1}`), Objective: 1.0, Evaluated: 1})
	c.Complete(0, "w", ShardResult{Mapping: json.RawMessage(`{"a": 1}`), Objective: 1.0, Evaluated: 1})
	c.Complete(2, "w", ShardResult{Evaluated: 5}) // no valid mapping: counters only
	m := c.Merged()
	if m.BestShard != 0 || string(m.Best) != `{"a":1}` {
		t.Errorf("tie broke to shard %d (%s), want lowest index", m.BestShard, m.Best)
	}
	if m.Evaluated != 7 {
		t.Errorf("evaluated = %d, want 7", m.Evaluated)
	}
}

func TestPlanStateRoundTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	spec := testSpec("exhaustive")
	c := NewCoordinator(testPlan(t, "exhaustive", 3, 0), 10*time.Second, clk.now)
	c.Complete(0, "w1", ShardResult{Mapping: json.RawMessage(`{"m": 0}`), Objective: 3, Evaluated: 10, Valid: 8})
	c.Lease("w2") // shard 1 leased: must persist as pending
	c.SaveCheckpoint(1, "w2", json.RawMessage(`{"cp": 1}`))

	path := t.TempDir() + "/coord.json"
	if err := c.SaveState(path, spec); err != nil {
		t.Fatal(err)
	}
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec == nil || st.Spec.Search != "exhaustive" {
		t.Fatalf("spec not embedded: %+v", st.Spec)
	}
	r, err := RestoreCoordinator(st, 10*time.Second, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	views := r.Shards()
	if views[0].Status != ShardDone || views[0].Result == nil || views[0].Result.Evaluated != 10 {
		t.Errorf("done shard lost: %+v", views[0])
	}
	if views[1].Status != ShardPending {
		t.Errorf("leased shard restored as %q, want pending", views[1].Status)
	}
	// The held checkpoint survives and seeds the next lease. The state file
	// re-indents embedded raw JSON, so compare compacted bytes.
	_, ckpt, ok := r.Lease("w3")
	var buf bytes.Buffer
	if err := json.Compact(&buf, ckpt); err != nil {
		t.Fatalf("restored checkpoint is not JSON: %v", err)
	}
	if !ok || buf.String() != `{"cp":1}` {
		t.Errorf("restored lease = %s, %v", ckpt, ok)
	}
	// Accounting carried over: completing the rest must not re-count shard 0.
	r.Complete(1, "w3", ShardResult{Evaluated: 5})
	r.Complete(2, "w3", ShardResult{Evaluated: 5})
	if !r.Done() {
		t.Error("restored coordinator not done after completing remaining shards")
	}
	if m := r.Merged(); m.Evaluated != 20 {
		t.Errorf("restored accounting: evaluated %d, want 20", m.Evaluated)
	}
}

func TestRestoreCoordinatorRejectsCorruptState(t *testing.T) {
	p := testPlan(t, "exhaustive", 2, 0)
	if _, err := RestoreCoordinator(&PlanState{Plan: p, Shard: []ShardSnapshot{{}}}, 0, nil); err == nil {
		t.Error("shard-count mismatch accepted")
	}
	if _, err := RestoreCoordinator(&PlanState{
		Plan:  p,
		Shard: []ShardSnapshot{{Status: ShardDone}, {}},
	}, 0, nil); err == nil {
		t.Error("done shard without result accepted")
	}
}

func TestRunLocalDeterministic(t *testing.T) {
	spec := testSpec("random")
	_, sp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(sp, "random", 11, 3, 600)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunLocal(context.Background(), spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLocal(context.Background(), spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluated != 600 || a.Evaluated != b.Evaluated || a.Valid != b.Valid {
		t.Errorf("counters differ: %+v vs %+v", a, b)
	}
	if string(a.Best) != string(b.Best) || a.BestObjective != b.BestObjective || a.BestShard != b.BestShard {
		t.Errorf("incumbent differs:\n%s (%v, shard %d)\n%s (%v, shard %d)",
			a.Best, a.BestObjective, a.BestShard, b.Best, b.BestObjective, b.BestShard)
	}
	if a.Best == nil {
		t.Error("no incumbent found")
	}
}
