package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ruby/internal/nest"
)

// shardSpec is the wire form of a shard assignment inside a /v1/jobs
// request ("shard" field; see docs/API.md). chain_lo == chain_hi means no
// enumeration restriction (substream shards).
type shardSpec struct {
	Index   int `json:"index"`
	ChainLo int `json:"chain_lo"`
	ChainHi int `json:"chain_hi"`
}

// jobRequest is the /v1/jobs request body for one shard.
type jobRequest struct {
	JobSpec
	Seed           int64           `json:"seed,omitempty"`
	MaxEvaluations int64           `json:"max_evaluations,omitempty"`
	Shard          *shardSpec      `json:"shard,omitempty"`
	Resume         json.RawMessage `json:"resume,omitempty"`
}

// JobResult is the result fragment of a finished worker job.
type JobResult struct {
	Mapping   json.RawMessage `json:"mapping"`
	Cost      nest.Cost       `json:"cost"`
	Evaluated int64           `json:"evaluated"`
	Valid     int64           `json:"valid"`
}

// JobStatus is a worker job's status record.
type JobStatus struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Result *JobResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// Client speaks the worker side of the /v1 API for one rubyserve base URL.
type Client struct {
	// Base is the worker's base URL (e.g. "http://127.0.0.1:8080").
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (cl *Client) client() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// apiErr decodes the uniform /v1 error envelope into a Go error.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return fmt.Errorf("dist: worker %s: %s (%s)", resp.Request.URL.Host, env.Error.Message, env.Error.Code)
	}
	return fmt.Errorf("dist: worker %s: HTTP %d", resp.Request.URL.Host, resp.StatusCode)
}

func (cl *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+path, nil)
	if err != nil {
		return nil, err
	}
	return cl.client().Do(req)
}

// Healthz probes the worker's health endpoint.
func (cl *Client) Healthz(ctx context.Context) error {
	resp, err := cl.get(ctx, "/v1/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	return nil
}

// SubmitShard submits one shard of the spec'd search as an async job,
// seeding it from resume (a search snapshot payload) when non-nil, and
// returns the worker-local job ID.
func (cl *Client) SubmitShard(ctx context.Context, spec *JobSpec, sh Shard, resume json.RawMessage) (string, error) {
	body, err := json.Marshal(jobRequest{
		JobSpec:        *spec,
		Seed:           sh.Seed,
		MaxEvaluations: sh.MaxEvaluations,
		Shard:          &shardSpec{Index: sh.Index, ChainLo: sh.Chain.Lo, ChainHi: sh.Chain.Hi},
		Resume:         resume,
	})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", apiErr(resp)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("dist: worker %s returned no job id", cl.Base)
	}
	return out.ID, nil
}

// Job fetches a job's status record.
func (cl *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := cl.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobCheckpoint fetches a job's latest search snapshot payload. A job that
// has not checkpointed yet (or a worker without a state directory) returns
// (nil, nil).
func (cl *Client) JobCheckpoint(ctx context.Context, id string) (json.RawMessage, error) {
	resp, err := cl.get(ctx, "/v1/jobs/"+id+"/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return payload, nil
}
