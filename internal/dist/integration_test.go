package dist_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ruby/internal/dist"
	"ruby/internal/server"
)

// The integration tests run a real coordinator against real rubyserve
// workers (httptest servers around server.NewService) and check the
// distributed determinism contract end to end: the merged incumbent and
// counters must be bit-identical to RunLocal's single-node execution of the
// same spec and plan — with or without worker kills mid-shard.

func integSpec(algo string) *dist.JobSpec {
	return &dist.JobSpec{
		Workload: json.RawMessage(`{"name": "mm", "type": "matmul", "matmul": {"m": 12, "n": 6, "k": 4}}`),
		Arch: json.RawMessage(`{
		  "name": "toy",
		  "levels": [
		    {"name": "DRAM"},
		    {"name": "GLB", "capacity_words": 512, "fanout": {"x": 6, "multicast": true}}
		  ]}`),
		Mapspace: "ruby-s",
		Search:   algo,
	}
}

// newWorker starts one rubyserve worker with its own state directory.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := server.NewService(server.Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return ts
}

// killAfterSubmits closes a worker's listener right after it has accepted
// its nth job submission — a deterministic mid-shard worker loss, whatever
// the scheduling: the job keeps running inside the dying process, but the
// fleet can no longer reach it and must re-queue the shard.
type killAfterSubmits struct {
	h       http.Handler
	n       int
	kill    func()
	mu      sync.Mutex
	submits int
}

func (k *killAfterSubmits) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.h.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		k.mu.Lock()
		k.submits++
		hit := k.submits == k.n
		k.mu.Unlock()
		if hit {
			go k.kill()
		}
	}
}

func mustPlan(t *testing.T, spec *dist.JobSpec, algo string, seed int64, n int, budget int64) *dist.Plan {
	t.Helper()
	_, sp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dist.BuildPlan(sp, algo, seed, n, budget)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// requireIdentical asserts the fleet outcome matches the single-node
// reference bit for bit: mapping bytes (the mapping key), objective,
// winning shard and both counters.
func requireIdentical(t *testing.T, got, want *dist.Merged) {
	t.Helper()
	if want.Best == nil {
		t.Fatal("reference run found no incumbent; test problem is broken")
	}
	if string(got.Best) != string(want.Best) {
		t.Errorf("merged incumbent differs:\nfleet: %s\nlocal: %s", got.Best, want.Best)
	}
	if got.BestObjective != want.BestObjective {
		t.Errorf("merged objective %v, want %v", got.BestObjective, want.BestObjective)
	}
	if got.BestShard != want.BestShard {
		t.Errorf("winning shard %d, want %d", got.BestShard, want.BestShard)
	}
	if got.Evaluated != want.Evaluated || got.Valid != want.Valid {
		t.Errorf("counters %d/%d, want %d/%d", got.Evaluated, got.Valid, want.Evaluated, want.Valid)
	}
}

// TestFleetMatchesLocalExhaustive: three workers scan a chain-sharded
// exhaustive plan; the merge must equal the sequential single-node scan.
func TestFleetMatchesLocalExhaustive(t *testing.T) {
	spec := integSpec("exhaustive")
	plan := mustPlan(t, spec, "exhaustive", 7, 4, 0)

	local, err := dist.RunLocal(context.Background(), spec, plan)
	if err != nil {
		t.Fatal(err)
	}

	workers := []string{newWorker(t).URL, newWorker(t).URL, newWorker(t).URL}
	fleet := &dist.Fleet{
		Coord:        dist.NewCoordinator(plan, 5*time.Second, nil),
		Spec:         spec,
		Workers:      workers,
		PollInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	merged, err := fleet.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, merged, local)
}

// TestFleetSurvivesWorkerKill: three workers run a substream plan; one
// worker is killed immediately after accepting its first shard. The shard
// re-queues onto a surviving worker and the merged result is still
// bit-identical to the single-node reference.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	spec := integSpec("random")
	plan := mustPlan(t, spec, "random", 42, 6, 9000)

	local, err := dist.RunLocal(context.Background(), spec, plan)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 dies after accepting its first job.
	svc, err := server.NewService(server.Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	killer := &killAfterSubmits{h: svc, n: 1}
	doomed := httptest.NewServer(killer)
	killer.kill = doomed.Close
	t.Cleanup(func() {
		doomed.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})

	workers := []string{doomed.URL, newWorker(t).URL, newWorker(t).URL}
	fleet := &dist.Fleet{
		Coord:        dist.NewCoordinator(plan, 5*time.Second, nil),
		Spec:         spec,
		Workers:      workers,
		PollInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	merged, err := fleet.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, merged, local)

	requeued := 0
	for _, sv := range fleet.Coord.Shards() {
		requeued += sv.Requeues
	}
	if requeued == 0 {
		t.Error("kill was not observed: no shard was re-queued")
	}
}

// TestFleetResumeFromState: a two-worker run is cancelled mid-plan with its
// state persisted; a fresh coordinator restored from the file completes only
// the remaining shards, and the final merge is bit-identical to the
// single-node reference.
func TestFleetResumeFromState(t *testing.T) {
	spec := integSpec("exhaustive")
	plan := mustPlan(t, spec, "exhaustive", 7, 4, 0)

	local, err := dist.RunLocal(context.Background(), spec, plan)
	if err != nil {
		t.Fatal(err)
	}

	workers := []string{newWorker(t).URL, newWorker(t).URL}
	statePath := t.TempDir() + "/coord.json"
	coord := dist.NewCoordinator(plan, 5*time.Second, nil)
	fleet := &dist.Fleet{
		Coord:        coord,
		Spec:         spec,
		Workers:      workers,
		PollInterval: 2 * time.Millisecond,
		StatePath:    statePath,
	}

	// Cancel as soon as the first shard completes, so the resumed run has
	// both finished and unfinished shards to deal with.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runCtx, interrupt := context.WithCancel(ctx)
	stop := make(chan struct{})
	go func() {
		defer interrupt()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			for _, sv := range coord.Shards() {
				if sv.Status == dist.ShardDone {
					return
				}
			}
		}
	}()
	_, runErr := fleet.Run(runCtx)
	close(stop)
	if runErr == nil {
		t.Log("plan finished before the interrupt; resume still exercised below")
	}

	st, err := dist.LoadState(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec == nil {
		t.Fatal("state file lacks the embedded spec")
	}
	coord2, err := dist.RestoreCoordinator(st, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet2 := &dist.Fleet{
		Coord:        coord2,
		Spec:         st.Spec,
		Workers:      workers,
		PollInterval: 5 * time.Millisecond,
		StatePath:    statePath,
	}
	merged, err := fleet2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, merged, local)
}
