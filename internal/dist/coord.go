package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ruby/internal/obs"
)

// Shard statuses tracked by the Coordinator.
const (
	// ShardPending: not leased; ready to hand to the next worker.
	ShardPending = "pending"
	// ShardLeased: a worker holds the shard; the lease expires unless
	// renewed by Heartbeat.
	ShardLeased = "leased"
	// ShardDone: a completion report was accepted; terminal.
	ShardDone = "done"
)

// ShardResult is one shard's final report: the shard-local incumbent (nil
// Mapping when the shard contains no valid mapping — a legitimate outcome
// for sparse exhaustive shards) plus honest counters. Deterministic per
// shard: any two complete executions of the same shard report equal values.
type ShardResult struct {
	// Mapping is the shard incumbent, in the mapping JSON encoding.
	Mapping json.RawMessage `json:"mapping,omitempty"`
	// Objective is the incumbent's objective value (meaningless when
	// Mapping is empty).
	Objective float64 `json:"objective,omitempty"`
	Evaluated int64   `json:"evaluated"`
	Valid     int64   `json:"valid"`
}

// shardState is the coordinator's view of one shard.
type shardState struct {
	shard    Shard
	status   string
	worker   string    // lease holder while leased
	expires  time.Time // lease deadline while leased
	requeues int
	// checkpoint is the latest worker-side search snapshot payload the
	// coordinator has collected; a re-queued shard resumes from it. Purely
	// work-saving: the shard result is the same from any starting snapshot.
	checkpoint json.RawMessage
	result     *ShardResult
}

// Merged is the fleet-level outcome: the global incumbent selected across
// shard results in shard-index order (strict improvement, so equal-valued
// incumbents resolve to the lowest shard index — exactly the order a
// single-node scan of the same plan encounters them) plus summed counters.
type Merged struct {
	// Best is the winning mapping's JSON encoding (nil when no shard found
	// a valid mapping).
	Best json.RawMessage `json:"best,omitempty"`
	// BestObjective is Best's objective value.
	BestObjective float64 `json:"best_objective,omitempty"`
	// BestShard is the index of the shard that produced Best (-1 if none).
	BestShard int   `json:"best_shard"`
	Evaluated int64 `json:"evaluated"`
	Valid     int64 `json:"valid"`
}

// Coordinator owns the authoritative shard table of one distributed search:
// which shards are pending, leased (to whom, until when) or done, the
// latest per-shard checkpoint, and the accepted results. All methods are
// safe for concurrent use. The zero value is not usable; build with
// NewCoordinator or RestoreCoordinator.
//
// Completion is idempotent and first-report-wins: a worker that dies after
// committing its final evaluation but before (or while) reporting cannot
// double-count — either its report was accepted (the re-queued run's
// duplicate is dropped) or it was not (the re-queued run reports the
// identical values). See TestCompleteIdempotentAfterRequeue.
type Coordinator struct {
	//ruby:guards shards,requeued,leaseExpired,completed,evals
	mu sync.Mutex
	// plan, leaseTTL and now are immutable after construction; unguarded.
	plan   *Plan
	shards []*shardState

	leaseTTL time.Duration
	now      func() time.Time // injected clock (tests freeze it)

	// Monotonic event counters for the metrics exposition.
	requeued     uint64
	leaseExpired uint64
	completed    uint64
	evals        uint64
}

// DefaultLeaseTTL bounds how long a silent worker keeps a shard before the
// coordinator re-queues it.
const DefaultLeaseTTL = 30 * time.Second

// NewCoordinator builds a coordinator over a plan. leaseTTL <= 0 selects
// DefaultLeaseTTL; a nil now uses time.Now.
func NewCoordinator(plan *Plan, leaseTTL time.Duration, now func() time.Time) *Coordinator {
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{plan: plan, leaseTTL: leaseTTL, now: now}
	for i := range plan.Shards {
		c.shards = append(c.shards, &shardState{shard: plan.Shards[i], status: ShardPending})
	}
	return c
}

// Plan returns the coordinated plan (not a copy; treat as read-only).
func (c *Coordinator) Plan() *Plan { return c.plan }

// Lease hands the lowest-indexed pending shard to worker, together with the
// shard's held checkpoint (nil when it never ran). ok is false when nothing
// is pending — the caller should keep polling ExpireLeases/Done, since a
// leased shard may yet be re-queued.
func (c *Coordinator) Lease(worker string) (sh Shard, checkpoint json.RawMessage, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.shards {
		if st.status != ShardPending {
			continue
		}
		st.status = ShardLeased
		st.worker = worker
		st.expires = c.now().Add(c.leaseTTL)
		return st.shard, st.checkpoint, true
	}
	return Shard{}, nil, false
}

// Heartbeat renews worker's lease on shard index. It reports whether the
// lease is still held by worker — a false return tells a worker its shard
// was re-queued (it should abandon the work).
func (c *Coordinator) Heartbeat(index int, worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(index)
	if st == nil || st.status != ShardLeased || st.worker != worker {
		return false
	}
	st.expires = c.now().Add(c.leaseTTL)
	return true
}

// SaveCheckpoint stores the latest worker-side snapshot for the shard, used
// to seed a re-queued run. Stale holders are ignored (their snapshot could
// precede the current holder's progress); completed shards no longer accept
// snapshots.
func (c *Coordinator) SaveCheckpoint(index int, worker string, payload json.RawMessage) {
	if len(payload) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(index)
	if st == nil || st.status != ShardLeased || st.worker != worker {
		return
	}
	st.checkpoint = append(json.RawMessage(nil), payload...)
}

// Complete accepts a shard's final report. The first report wins: repeats —
// from the same worker, or from the original holder of a re-queued shard
// racing its replacement — are dropped, so evaluation totals count every
// shard exactly once. Unlike Heartbeat, a stale holder's report is still
// accepted when the shard is not yet done: the shard contract makes its
// values identical to the ones the current holder would report.
func (c *Coordinator) Complete(index int, worker string, res ShardResult) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(index)
	if st == nil || st.status == ShardDone {
		return false
	}
	st.status = ShardDone
	st.worker = ""
	st.expires = time.Time{}
	st.checkpoint = nil
	r := res
	r.Mapping = compactJSON(res.Mapping)
	st.result = &r
	c.completed++
	c.evals += uint64(res.Evaluated)
	return true
}

// Fail releases worker's lease and re-queues the shard immediately (the
// fleet calls it when a worker is observed dead, rather than waiting for
// the lease to lapse). Reports whether a re-queue happened.
func (c *Coordinator) Fail(index int, worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(index)
	if st == nil || st.status != ShardLeased || st.worker != worker {
		return false
	}
	st.status = ShardPending
	st.worker = ""
	st.expires = time.Time{}
	st.requeues++
	c.requeued++
	return true
}

// ExpireLeases re-queues every leased shard whose lease deadline passed,
// returning the number re-queued.
func (c *Coordinator) ExpireLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	n := 0
	for _, st := range c.shards {
		if st.status == ShardLeased && now.After(st.expires) {
			st.status = ShardPending
			st.worker = ""
			st.expires = time.Time{}
			st.requeues++
			c.requeued++
			c.leaseExpired++
			n++
		}
	}
	return n
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.shards {
		if st.status != ShardDone {
			return false
		}
	}
	return true
}

// Merged folds the accepted shard results into the global outcome. Call
// after Done; with shards outstanding it merges the results so far.
func (c *Coordinator) Merged() *Merged {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Merged{BestShard: -1}
	for _, st := range c.shards {
		if st.result == nil {
			continue
		}
		r := st.result
		m.Evaluated += r.Evaluated
		m.Valid += r.Valid
		if len(r.Mapping) == 0 {
			continue
		}
		if m.Best == nil || r.Objective < m.BestObjective {
			m.Best = r.Mapping
			m.BestObjective = r.Objective
			m.BestShard = st.shard.Index
		}
	}
	return m
}

// Register exposes the coordinator's metrics on a registry: the
// ruby_shards{status} gauge (all statuses always exported) and the
// monotonic re-queue / lease-expiry / completion / evaluation counters.
func (c *Coordinator) Register(reg *obs.Registry) {
	reg.GaugeVec("ruby_shards", "Number of shards of the coordinated plan by status.", "status", c.statusSamples)
	reg.Counter("ruby_shards_requeued_total", "Shards re-queued after worker loss (failure or lease expiry).", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.requeued)
	})
	reg.Counter("ruby_shards_lease_expired_total", "Shard leases that expired without heartbeat.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.leaseExpired)
	})
	reg.Counter("ruby_shards_completed_total", "Shard completion reports accepted (each shard counted once).", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.completed)
	})
	reg.Counter("ruby_shard_evals_total", "Evaluations accounted by accepted shard completions.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.evals)
	})
}

// statusSamples reports the shard count per status; every status is always
// present so scrape series stay continuous.
func (c *Coordinator) statusSamples() []obs.Sample {
	counts := map[string]int{ShardPending: 0, ShardLeased: 0, ShardDone: 0}
	c.mu.Lock()
	for _, st := range c.shards {
		counts[st.status]++
	}
	c.mu.Unlock()
	statuses := []string{ShardDone, ShardLeased, ShardPending} // fixed order: no map iteration into the exposition
	out := make([]obs.Sample, 0, len(statuses))
	for _, s := range statuses {
		out = append(out, obs.Sample{LabelValue: s, Value: float64(counts[s])})
	}
	return out
}

// compactJSON canonicalizes raw JSON to its compact form (and a private
// copy). Mapping bytes arrive in transport-dependent formatting — HTTP
// bodies are compact, state files re-indent embedded payloads — and merged
// incumbents are compared byte-for-byte across runs, so the coordinator
// keeps exactly one canonical encoding. Invalid input is copied verbatim.
func compactJSON(raw json.RawMessage) json.RawMessage {
	if len(raw) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return append(json.RawMessage(nil), raw...)
	}
	return buf.Bytes()
}

// state returns the shard's state or nil for an unknown index; c.mu held.
//
//ruby:locked mu
func (c *Coordinator) state(index int) *shardState {
	if index < 0 || index >= len(c.shards) {
		return nil
	}
	return c.shards[index]
}

// ShardView is a read-only snapshot of one shard's coordination state, as
// served by the coordinator's /v1/shards endpoints.
type ShardView struct {
	Shard    Shard        `json:"shard"`
	Status   string       `json:"status"`
	Worker   string       `json:"worker,omitempty"`
	Requeues int          `json:"requeues,omitempty"`
	Result   *ShardResult `json:"result,omitempty"`
}

// Shards returns a snapshot of every shard's state, in index order.
func (c *Coordinator) Shards() []ShardView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardView, len(c.shards))
	for i, st := range c.shards {
		out[i] = ShardView{Shard: st.shard, Status: st.status, Worker: st.worker, Requeues: st.requeues, Result: st.result}
	}
	return out
}

// Shard returns one shard's view.
func (c *Coordinator) Shard(index int) (ShardView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(index)
	if st == nil {
		return ShardView{}, fmt.Errorf("dist: unknown shard %d", index)
	}
	return ShardView{Shard: st.shard, Status: st.status, Worker: st.worker, Requeues: st.requeues, Result: st.result}, nil
}
