package dist

import (
	"context"
	"encoding/json"
	"fmt"

	"ruby/internal/engine"
	"ruby/internal/obs"
	"ruby/internal/search"
)

// localCacheEntries mirrors the server's per-request memo cache size, so
// the single-node reference execution evaluates through an equivalent
// pipeline.
const localCacheEntries = 1 << 15

// RunLocal executes a plan's shards sequentially in-process and merges them
// exactly as the coordinator does — the single-node reference a distributed
// run of the same spec and plan must reproduce bit-for-bit (mapping and
// objective). Cancelling the context aborts mid-shard with the merge of the
// shards completed so far and the context's error.
func RunLocal(ctx context.Context, spec *JobSpec, plan *Plan) (*Merged, error) {
	ctx, span := obs.StartSpan(ctx, "dist:local")
	defer span.End()

	ev, sp, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(sp); err != nil {
		return nil, err
	}
	obj, err := ParseObjective(spec.Objective)
	if err != nil {
		return nil, err
	}
	base := search.Options{
		Algo:                 plan.Algo,
		ConsecutiveNoImprove: spec.NoImprove,
		Objective:            obj,
	}
	eng := engine.Config{CacheEntries: localCacheEntries}.New(ev)

	c := NewCoordinator(plan, 0, nil)
	for _, sh := range plan.Shards {
		sr, err := search.NewSearcherFor(plan.Algo, sp, eng, sh.Options(base), 0)
		if err != nil {
			return nil, err
		}
		res, err := search.RunCheckpointed(ctx, sr, search.CheckpointConfig{})
		if err != nil {
			return c.Merged(), err
		}
		report := ShardResult{Evaluated: res.Evaluated, Valid: res.Valid}
		if res.Best != nil {
			raw, err := json.Marshal(res.Best)
			if err != nil {
				return nil, fmt.Errorf("dist: encode shard %d incumbent: %w", sh.Index, err)
			}
			report.Mapping = raw
			report.Objective = obj.Value(&res.BestCost)
		}
		c.Complete(sh.Index, "local", report)
	}
	return c.Merged(), nil
}
