// Package dist distributes one mapspace search across a fleet of rubyserve
// workers while keeping the single-node determinism discipline: the merged
// result is a pure function of the problem, the seed and the shard plan —
// independent of worker count, scheduling and failures.
//
// The moving parts:
//
//   - Plan (BuildPlan): a deterministic partition of the search into
//     disjoint shards — contiguous leading-dimension chain ranges for the
//     exhaustive scan ("chain" plans, see mapspace.Space.ShardLeading), or
//     per-shard RNG substreams with a split evaluation budget for the
//     stochastic searchers ("substream" plans; the checkpoint RNG's
//     splitmix64 seeding decorrelates adjacent seeds).
//   - Coordinator: tracks shard leases, held checkpoints and results;
//     re-queues shards whose worker lease expired; merges per-shard
//     incumbents in shard-index order. Its full state serializes
//     (checkpoint kind "shards") so an interrupted coordination run
//     resumes without repeating finished shards.
//   - Fleet: drives a Coordinator against worker base URLs over the
//     /v1/jobs HTTP API (Client), polling job status as the lease
//     heartbeat and collecting worker-side checkpoints so a re-queued
//     shard restarts from its last snapshot instead of from scratch.
//   - RunLocal: the single-node reference execution of the same plan,
//     which the distributed run must match bit-for-bit.
//
// Every shard is itself a checkpoint-resumable search (search.Searcher),
// so a shard re-run — from scratch or from any intermediate snapshot —
// terminates with the identical shard result. That is what makes worker
// loss harmless: checkpoints only save work, they never change answers,
// and the coordinator counts each shard's evaluations exactly once (the
// first accepted completion report).
package dist

import (
	"encoding/json"
	"fmt"
	"strings"

	"ruby/internal/config"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
)

// JobSpec is the problem and base search configuration shipped to every
// worker, in the /v1 request schema (raw JSON fragments are forwarded
// verbatim).
type JobSpec struct {
	Workload    json.RawMessage `json:"workload"`
	Arch        json.RawMessage `json:"arch"`
	Constraints json.RawMessage `json:"constraints,omitempty"`
	Mapspace    string          `json:"mapspace,omitempty"` // default ruby-s
	// Search is the algorithm name; must be checkpoint-resumable
	// (search.ResumableAlgorithms). "" means random.
	Search    string `json:"search,omitempty"`
	Objective string `json:"objective,omitempty"` // edp (default), energy, delay
	// NoImprove is the per-shard consecutive-no-improvement termination
	// criterion for stochastic searchers (0 = disabled; then the plan's
	// per-shard evaluation budgets bound the work).
	NoImprove int64 `json:"no_improve,omitempty"`
}

// Resolve parses the spec into model objects, mirroring the server's
// problem resolution so coordinator-side planning and worker-side execution
// agree on the mapspace.
func (sp *JobSpec) Resolve() (*nest.Evaluator, *mapspace.Space, error) {
	if len(sp.Workload) == 0 || len(sp.Arch) == 0 {
		return nil, nil, fmt.Errorf("dist: workload and arch are required")
	}
	w, err := config.ParseWorkload(sp.Workload)
	if err != nil {
		return nil, nil, err
	}
	a, err := config.ParseArch(sp.Arch)
	if err != nil {
		return nil, nil, err
	}
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return nil, nil, err
	}
	cons := mapspace.Constraints{}
	if len(sp.Constraints) > 0 {
		cons, err = config.ParseConstraints(sp.Constraints)
		if err != nil {
			return nil, nil, err
		}
	}
	kind, err := ParseKind(sp.Mapspace)
	if err != nil {
		return nil, nil, err
	}
	return ev, mapspace.New(w, a, kind, cons), nil
}

// ParseKind resolves a mapspace name using the same spellings the /v1 API
// accepts ("" and "ruby-s" select Ruby-S).
func ParseKind(s string) (mapspace.Kind, error) {
	switch strings.ToLower(s) {
	case "", "ruby-s", "rubys":
		return mapspace.RubyS, nil
	case "pfm", "perfect":
		return mapspace.PFM, nil
	case "ruby":
		return mapspace.Ruby, nil
	case "ruby-t", "rubyt":
		return mapspace.RubyT, nil
	default:
		return 0, fmt.Errorf("dist: unknown mapspace %q", s)
	}
}

// ParseObjective resolves an objective name using the /v1 spellings.
func ParseObjective(s string) (search.Objective, error) {
	switch strings.ToLower(s) {
	case "", "edp":
		return search.ObjectiveEDP, nil
	case "energy":
		return search.ObjectiveEnergy, nil
	case "delay", "latency":
		return search.ObjectiveDelay, nil
	default:
		return 0, fmt.Errorf("dist: unknown objective %q", s)
	}
}

// Plan partition kinds.
const (
	// PlanChain shards the deterministic enumeration by contiguous
	// leading-dimension chain ranges (exhaustive searches).
	PlanChain = "chain"
	// PlanSubstream shards a stochastic search by RNG substream: every
	// shard runs the same algorithm with its own seed and a slice of the
	// total evaluation budget.
	PlanSubstream = "substream"
)

// Shard is one unit of distributable work.
type Shard struct {
	Index int `json:"index"`
	// Chain is the leading-dimension chain range scanned by this shard
	// (chain plans only; empty for substream plans).
	Chain mapspace.ChainRange `json:"chain"`
	// Seed is the shard's RNG seed (substream plans; chain plans carry the
	// plan seed for uniformity, the scan does not draw).
	Seed int64 `json:"seed"`
	// MaxEvaluations bounds the shard's evaluations (substream plans;
	// 0 on chain plans = scan the whole range).
	MaxEvaluations int64 `json:"max_evaluations,omitempty"`
}

// Options translates the shard into per-shard search options on top of the
// base options.
func (sh Shard) Options(base search.Options) search.Options {
	base.Seed = sh.Seed
	base.MaxEvaluations = sh.MaxEvaluations
	base.Shard = sh.Chain
	return base
}

// Plan is a deterministic partition of one search into disjoint shards. Two
// BuildPlan calls with the same space, algorithm, seed and shard count
// produce identical plans; the plan is part of the distributed determinism
// contract (docs/DISTRIBUTED.md).
type Plan struct {
	Algo string `json:"algo"`
	Seed int64  `json:"seed"`
	Kind string `json:"kind"` // PlanChain or PlanSubstream
	// LeadDim names the sharded dimension (chain plans), recorded so a
	// resumed coordination run can sanity-check the plan against the space.
	LeadDim string  `json:"lead_dim,omitempty"`
	Shards  []Shard `json:"shards"`
}

// substreamStride separates per-shard seeds. Any injective map from shard
// index to seed works — the checkpoint RNG feeds seeds through splitmix64,
// which decorrelates even adjacent integers — but a large odd stride also
// keeps the raw seed values visibly distinct in logs and state files.
const substreamStride = 0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFF // 48-bit golden-ratio slice

// BuildPlan partitions a search over sp into at most n shards. Exhaustive
// searches shard by leading-dimension chain prefix; the resumable
// stochastic algorithms (random, guided, hillclimb) shard by RNG substream,
// which requires maxEvals > 0 so every shard's work is bounded — the
// total budget is split across shards with the remainder going to the
// first ones. Non-resumable algorithms are rejected: a shard must be able
// to re-queue from a checkpoint.
func BuildPlan(sp *mapspace.Space, algo string, seed int64, n int, maxEvals int64) (*Plan, error) {
	if n < 1 {
		n = 1
	}
	if algo == "" {
		algo = "random"
	}
	resumable := false
	for _, a := range search.ResumableAlgorithms {
		if algo == a {
			resumable = true
			break
		}
	}
	if !resumable {
		return nil, fmt.Errorf("dist: algorithm %q is not resumable (want one of %s)",
			algo, strings.Join(search.ResumableAlgorithms, "|"))
	}

	p := &Plan{Algo: algo, Seed: seed}
	if algo == "exhaustive" {
		p.Kind = PlanChain
		p.LeadDim = sp.LeadingDim()
		for i, r := range sp.ShardLeading(n) {
			p.Shards = append(p.Shards, Shard{Index: i, Chain: r, Seed: seed})
		}
		return p, nil
	}

	if maxEvals <= 0 {
		return nil, fmt.Errorf("dist: a %s plan needs max_evaluations > 0 to bound each shard", algo)
	}
	if int64(n) > maxEvals {
		n = int(maxEvals)
	}
	p.Kind = PlanSubstream
	for i := 0; i < n; i++ {
		budget := maxEvals / int64(n)
		if int64(i) < maxEvals%int64(n) {
			budget++
		}
		p.Shards = append(p.Shards, Shard{
			Index:          i,
			Seed:           seed + int64(i)*substreamStride,
			MaxEvaluations: budget,
		})
	}
	return p, nil
}

// Validate cross-checks a (possibly deserialized) plan against the space it
// is about to run over: chain ranges must partition the leading dimension's
// chains and shard indices must be dense. Resume paths call it before
// reusing a stored plan.
func (p *Plan) Validate(sp *mapspace.Space) error {
	if len(p.Shards) == 0 {
		return fmt.Errorf("dist: plan has no shards")
	}
	for i, sh := range p.Shards {
		if sh.Index != i {
			return fmt.Errorf("dist: shard %d has index %d", i, sh.Index)
		}
	}
	switch p.Kind {
	case PlanChain:
		if p.LeadDim != sp.LeadingDim() {
			return fmt.Errorf("dist: plan shards dimension %q, space leads with %q", p.LeadDim, sp.LeadingDim())
		}
		total := int(sp.ChainCount(sp.LeadingDim()))
		lo := 0
		for _, sh := range p.Shards {
			if sh.Chain.Lo != lo || sh.Chain.Empty() {
				return fmt.Errorf("dist: shard %d chain range [%d, %d) does not continue partition at %d",
					sh.Index, sh.Chain.Lo, sh.Chain.Hi, lo)
			}
			lo = sh.Chain.Hi
		}
		if lo != total {
			return fmt.Errorf("dist: plan covers %d leading chains, space has %d", lo, total)
		}
	case PlanSubstream:
		for _, sh := range p.Shards {
			if sh.MaxEvaluations <= 0 {
				return fmt.Errorf("dist: substream shard %d has no evaluation budget", sh.Index)
			}
		}
	default:
		return fmt.Errorf("dist: unknown plan kind %q", p.Kind)
	}
	return nil
}
